//! The training-step executor.
//!
//! Drives the dataflow graph over the simulated memory system under a
//! [`MemoryManager`] policy: allocates tensors at first use, times every
//! operand access, charges compute, frees tensors after their last use and
//! invokes the policy hooks at each boundary.

use crate::ctx::ExecCtx;
use crate::error::ExecError;
use crate::graph::Graph;
use crate::manager::MemoryManager;
use crate::report::{StepReport, TrainReport};
use crate::tensor::{OpRef, TensorId};
use sentinel_mem::{AccessKind, MemError, MemorySystem, Tier, TimeMode, TraceTrack};
use sentinel_util::Json;

/// Number of allocation retries after capacity-pressure handling before the
/// executor overflows to the other tier.
const PRESSURE_RETRIES: usize = 4;

/// Executes training steps of one graph against one memory system.
///
/// ```
/// use sentinel_dnn::{Executor, GraphBuilder, OpKind, SingleTier, TensorKind};
/// use sentinel_mem::{HmConfig, MemorySystem};
///
/// # fn main() -> Result<(), sentinel_dnn::ExecError> {
/// let mut b = GraphBuilder::new("tiny", 1);
/// let x = b.tensor("x", 4096, TensorKind::Input);
/// let y = b.tensor("y", 4096, TensorKind::Activation);
/// b.begin_layer("l0");
/// b.op("f", OpKind::Other, 1000).reads(&[x]).writes(&[y]).push();
/// let graph = b.finish().expect("valid graph");
///
/// let mem = MemorySystem::new(HmConfig::testing());
/// let mut exec = Executor::new(&graph, mem);
/// let mut policy = SingleTier::slow();
/// let report = exec.run(&mut policy, 3)?;
/// assert_eq!(report.steps_executed(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Executor<'g> {
    ctx: ExecCtx<'g>,
    started: bool,
    steps_run: usize,
}

impl<'g> Executor<'g> {
    /// Build an executor for `graph` over `mem`.
    #[must_use]
    pub fn new(graph: &'g Graph, mem: MemorySystem) -> Self {
        Executor { ctx: ExecCtx::new(graph, mem), started: false, steps_run: 0 }
    }

    /// The execution context (clock, memory, placements).
    #[must_use]
    pub fn ctx(&self) -> &ExecCtx<'g> {
        &self.ctx
    }

    /// Mutable execution context, for orchestration layers (e.g. Sentinel's
    /// runtime switching profiling on and off between steps).
    #[must_use]
    pub fn ctx_mut(&mut self) -> &mut ExecCtx<'g> {
        &mut self.ctx
    }

    /// Consume the executor, returning the memory system for inspection.
    #[must_use]
    pub fn into_mem(self) -> MemorySystem {
        self.ctx.into_mem()
    }

    /// Select the memory system's poll [`TimeMode`] (builder form).
    ///
    /// The executor polls for completed migrations at fixed sites (layer
    /// boundaries, pressure handling); the mode only changes how the
    /// engine answers those polls — indexed event drain versus the
    /// per-step linear scan — never where they happen, so both modes
    /// produce byte-identical reports.
    #[must_use]
    pub fn with_time_mode(mut self, mode: TimeMode) -> Self {
        self.ctx.mem_mut().set_time_mode(mode);
        self
    }

    /// Run `steps` training steps, returning the aggregated report.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from allocation or policy actions.
    pub fn run(&mut self, policy: &mut dyn MemoryManager, steps: usize) -> Result<TrainReport, ExecError> {
        let mut report = TrainReport {
            model: self.ctx.graph().name().to_owned(),
            policy: policy.name().to_owned(),
            batch: self.ctx.graph().batch(),
            steps: Vec::with_capacity(steps),
        };
        for _ in 0..steps {
            report.steps.push(self.run_step(policy)?);
        }
        policy.on_train_end(&mut self.ctx);
        Ok(report)
    }

    /// Allocate preallocated tensors (weights, inputs, optimizer state) and
    /// fire `on_train_begin`. Called automatically by the first step.
    ///
    /// # Errors
    ///
    /// [`ExecError::OutOfMemory`] if neither tier can hold a tensor.
    pub fn train_begin(&mut self, policy: &mut dyn MemoryManager) -> Result<(), ExecError> {
        if self.started {
            return Ok(());
        }
        self.started = true;
        policy.on_train_begin(&mut self.ctx);
        let prealloc: Vec<TensorId> =
            self.ctx.graph().preallocated().map(|t| t.id).collect();
        for t in prealloc {
            self.allocate(policy, t)?;
        }
        Ok(())
    }

    /// Execute one training step under `policy`.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from allocation or policy actions, and
    /// surfaces any residency-sanitizer violation latched during the step
    /// as [`ExecError::Mem`] with [`sentinel_mem::MemError::InvariantViolation`].
    pub fn run_step(&mut self, policy: &mut dyn MemoryManager) -> Result<StepReport, ExecError> {
        self.train_begin(policy)?;
        let step = self.steps_run;
        self.ctx.begin_step(step);
        let start_ns = self.ctx.now();
        let stats_before = self.ctx.mem().stats().clone();
        let faults_before = self.ctx.mem().fault_counters();

        let tracer = self.ctx.mem().tracer().clone();
        policy.on_step_begin(&mut self.ctx);
        let num_layers = self.ctx.graph().num_layers();
        for li in 0..num_layers {
            let layer_start_ns = self.ctx.now();
            policy.before_layer(li, &mut self.ctx);
            let num_ops = self.ctx.graph().layers()[li].ops.len();
            for oi in 0..num_ops {
                let at = OpRef { layer: li, op: oi };
                self.run_op(policy, at)?;
            }
            policy.after_layer(li, &mut self.ctx);
            if tracer.full() {
                tracer.span(
                    TraceTrack::Steps,
                    "exec",
                    self.ctx.graph().layers()[li].name.clone(),
                    layer_start_ns,
                    self.ctx.now() - layer_start_ns,
                    vec![("layer", Json::U64(li as u64))],
                );
            }
        }
        policy.on_step_end(&mut self.ctx);
        self.ctx.poll();
        if let Some(violation) = self.ctx.mem().sanitizer_violation() {
            return Err(ExecError::Mem(violation.clone()));
        }
        // Drained after the final poll so the ledger's last record covers
        // completions applied there, and before the stats snapshot below so
        // per-step ledger sums reconcile with the report deltas exactly.
        let intervals =
            if tracer.enabled() { policy.step_ledger(&self.ctx) } else { Vec::new() };
        let warnings = policy.step_warnings();
        if tracer.enabled() {
            tracer.span(
                TraceTrack::Steps,
                "exec",
                format!("step {step}"),
                start_ns,
                self.ctx.now() - start_ns,
                vec![("step", Json::U64(step as u64))],
            );
        }

        self.steps_run += 1;
        let stats_after = self.ctx.mem().stats().clone();
        let breakdown = self.ctx.take_breakdown();
        Ok(StepReport {
            step,
            duration_ns: self.ctx.now() - start_ns,
            breakdown,
            promoted_bytes: stats_after.promoted_bytes - stats_before.promoted_bytes,
            demoted_bytes: stats_after.demoted_bytes - stats_before.demoted_bytes,
            fast_accesses: stats_after.mm_accesses[Tier::Fast.index()]
                - stats_before.mm_accesses[Tier::Fast.index()],
            slow_accesses: stats_after.mm_accesses[Tier::Slow.index()]
                - stats_before.mm_accesses[Tier::Slow.index()],
            faults: stats_after.profiling_faults - stats_before.profiling_faults,
            peak_fast_pages: stats_after.peak_mapped_pages[Tier::Fast.index()],
            peak_total_pages: stats_after.peak_mapped_pages[Tier::Fast.index()]
                + stats_after.peak_mapped_pages[Tier::Slow.index()],
            fault: self.ctx.mem().fault_counters().delta(&faults_before),
            intervals,
            warnings,
        })
    }

    fn run_op(&mut self, policy: &mut dyn MemoryManager, at: OpRef) -> Result<(), ExecError> {
        // Allocate outputs (and op-internal temporaries) on first use.
        let writes: Vec<(TensorId, u32)> = {
            let op = &self.ctx.graph().layers()[at.layer].ops[at.op];
            op.writes.iter().map(|o| (o.tensor, o.passes)).collect()
        };
        let reads: Vec<(TensorId, u32)> = {
            let op = &self.ctx.graph().layers()[at.layer].ops[at.op];
            op.reads.iter().map(|o| (o.tensor, o.passes)).collect()
        };
        let flops = self.ctx.graph().layers()[at.layer].ops[at.op].flops;

        for &(t, _) in &writes {
            if !self.ctx.is_live(t) {
                self.allocate(policy, t)?;
            }
        }
        policy.before_op(at, &mut self.ctx);

        for &(t, passes) in &reads {
            policy.before_access(t, AccessKind::Read, &mut self.ctx);
            if !self.ctx.is_live(t) {
                // A policy dropped it (recompute flow) and failed to restore.
                return Err(ExecError::NotAllocated { tensor: t });
            }
            for _ in 0..passes {
                self.ctx.access_tensor(t, AccessKind::Read)?;
            }
        }
        self.ctx.charge_compute(flops);
        for &(t, passes) in &writes {
            policy.before_access(t, AccessKind::Write, &mut self.ctx);
            for _ in 0..passes {
                self.ctx.access_tensor(t, AccessKind::Write)?;
            }
        }
        policy.after_op(at, &mut self.ctx);

        // Free tensors whose last reference this op was.
        let mut dead: Vec<TensorId> = Vec::new();
        {
            let graph = self.ctx.graph();
            let op = &graph.layers()[at.layer].ops[at.op];
            for t in op.referenced() {
                let tensor = graph.tensor(t);
                if tensor.last_ref == Some(at) && !tensor.preallocated() && !dead.contains(&t) {
                    dead.push(t);
                }
            }
        }
        for t in dead {
            if self.ctx.is_live(t) {
                policy.on_free(t, &mut self.ctx);
                if self.ctx.is_live(t) {
                    self.ctx.release(t)?;
                }
            }
        }
        Ok(())
    }

    fn allocate(&mut self, policy: &mut dyn MemoryManager, t: TensorId) -> Result<(), ExecError> {
        let tensor = self.ctx.graph().tensor(t).clone();
        let spec = policy.pool_for(&tensor, &self.ctx);
        let mut tier = policy.tier_for(&tensor, &self.ctx);
        let mut tried_other = false;
        let mut retries = 0;
        loop {
            match self.ctx.allocate_with(t, spec, tier) {
                Ok(()) => {
                    policy.on_alloc(t, &mut self.ctx);
                    return Ok(());
                }
                Err(ExecError::Mem(MemError::CapacityExceeded { requested_pages, .. })) => {
                    if retries < PRESSURE_RETRIES
                        && policy.on_capacity_pressure(tier, requested_pages, &mut self.ctx)
                    {
                        retries += 1;
                        continue;
                    }
                    if !tried_other {
                        tried_other = true;
                        retries = 0;
                        tier = tier.other();
                        continue;
                    }
                    return Err(ExecError::OutOfMemory { tensor: t, bytes: tensor.bytes });
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::manager::SingleTier;
    use crate::tensor::TensorKind;
    use crate::OpKind;
    use sentinel_mem::HmConfig;

    /// Two-layer graph: fwd produces an activation + temp, bwd consumes it.
    fn graph() -> Graph {
        let mut b = GraphBuilder::new("g", 2);
        let w = b.tensor("w", 4096, TensorKind::Weight);
        let x = b.tensor("x", 8192, TensorKind::Input);
        let tmp = b.tensor("tmp", 1024, TensorKind::Temporary);
        let act = b.tensor("act", 8192, TensorKind::Activation);
        let grad = b.tensor("grad", 4096, TensorKind::WeightGrad);
        b.begin_layer("fwd");
        b.op("pad", OpKind::Pad, 100).reads(&[x]).writes(&[tmp]).push();
        b.op("conv", OpKind::Conv2d, 10_000).reads(&[w, tmp]).writes(&[act]).push();
        b.begin_layer("bwd");
        b.op("dconv", OpKind::Conv2d, 20_000).reads(&[w, act]).writes(&[grad]).push();
        b.op("upd", OpKind::WeightUpdate, 100).reads(&[grad]).writes(&[w]).push();
        b.finish().unwrap()
    }

    fn mem() -> MemorySystem {
        MemorySystem::new(HmConfig::testing())
    }

    #[test]
    fn run_produces_per_step_reports() {
        let g = graph();
        let mut e = Executor::new(&g, mem());
        let mut p = SingleTier::slow();
        let r = e.run(&mut p, 4).unwrap();
        assert_eq!(r.steps_executed(), 4);
        assert!(r.steps.iter().all(|s| s.duration_ns > 0));
        assert_eq!(r.policy, "slow-only");
        assert_eq!(r.model, "g");
    }

    #[test]
    fn steps_are_deterministic_and_stable() {
        let g = graph();
        let mut e = Executor::new(&g, mem());
        let mut p = SingleTier::slow();
        let r = e.run(&mut p, 3).unwrap();
        // After warmup, steps repeat exactly (same graph, same placements).
        assert_eq!(r.steps[1].duration_ns, r.steps[2].duration_ns);

        let mut e2 = Executor::new(&g, mem());
        let r2 = e2.run(&mut SingleTier::slow(), 3).unwrap();
        assert_eq!(r.steps, r2.steps);
    }

    #[test]
    fn fast_only_beats_slow_only() {
        let g = graph();
        let fast = Executor::new(&g, mem()).run(&mut SingleTier::fast(), 3).unwrap();
        let slow = Executor::new(&g, mem()).run(&mut SingleTier::slow(), 3).unwrap();
        assert!(fast.steady_step_ns() < slow.steady_step_ns());
    }

    #[test]
    fn runtime_tensors_are_freed_after_last_use() {
        let g = graph();
        let mut e = Executor::new(&g, mem());
        let mut p = SingleTier::slow();
        e.run(&mut p, 2).unwrap();
        // After a full step only preallocated tensors remain live.
        assert!(e.ctx().is_live(TensorId(0))); // weight
        assert!(e.ctx().is_live(TensorId(1))); // input
        assert!(!e.ctx().is_live(TensorId(2))); // temp
        assert!(!e.ctx().is_live(TensorId(3))); // activation
        assert!(!e.ctx().is_live(TensorId(4))); // gradient
    }

    #[test]
    fn overflow_to_other_tier_when_full() {
        // Fast tier: 16 pages = 64 KiB. Graph needs ~26 KiB; shrink fast to
        // 2 pages to force overflow.
        let g = graph();
        let cfg = HmConfig::testing().with_fast_capacity(2 * 4096);
        let mut e = Executor::new(&g, MemorySystem::new(cfg));
        let mut p = SingleTier::fast();
        let r = e.run(&mut p, 2).unwrap();
        assert_eq!(r.steps_executed(), 2);
        // Some accesses must have landed in slow memory.
        assert!(r.steps[1].slow_accesses > 0);
    }

    #[test]
    fn out_of_memory_when_both_tiers_full() {
        let g = graph();
        let cfg = HmConfig::testing().with_fast_capacity(4096).with_slow_capacity(4096);
        let mut e = Executor::new(&g, MemorySystem::new(cfg));
        let mut p = SingleTier::fast();
        let err = e.run(&mut p, 1);
        assert!(matches!(err, Err(ExecError::OutOfMemory { .. })));
    }

    #[test]
    fn compute_time_is_charged() {
        let g = graph();
        let mut e = Executor::new(&g, mem());
        let mut p = SingleTier::fast();
        let r = e.run(&mut p, 1).unwrap();
        // 30 200 flops at 1 flop/ns.
        assert_eq!(r.steps[0].breakdown.compute_ns, 30_200);
    }

    #[test]
    fn policy_hooks_fire_in_order() {
        #[derive(Default)]
        struct Recorder {
            events: Vec<String>,
        }
        impl MemoryManager for Recorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn on_train_begin(&mut self, _ctx: &mut ExecCtx<'_>) {
                self.events.push("train_begin".into());
            }
            fn on_step_begin(&mut self, _ctx: &mut ExecCtx<'_>) {
                self.events.push("step_begin".into());
            }
            fn before_layer(&mut self, layer: usize, _ctx: &mut ExecCtx<'_>) {
                self.events.push(format!("layer{layer}"));
            }
            fn tier_for(&mut self, _t: &crate::Tensor, _ctx: &ExecCtx<'_>) -> Tier {
                Tier::Slow
            }
            fn on_step_end(&mut self, _ctx: &mut ExecCtx<'_>) {
                self.events.push("step_end".into());
            }
        }
        let g = graph();
        let mut e = Executor::new(&g, mem());
        let mut p = Recorder::default();
        e.run_step(&mut p).unwrap();
        assert_eq!(p.events, vec!["train_begin", "step_begin", "layer0", "layer1", "step_end"]);
    }

    #[test]
    fn time_mode_builder_reaches_the_memory_system_and_reports_match() {
        let g = graph();
        let e = Executor::new(&g, mem()).with_time_mode(TimeMode::PerStep);
        assert_eq!(e.ctx().mem().time_mode(), TimeMode::PerStep);

        // Both modes produce byte-identical reports on the same graph.
        let mut reports = Vec::new();
        for mode in [TimeMode::EventDriven, TimeMode::PerStep] {
            let mut e = Executor::new(&g, mem()).with_time_mode(mode);
            let mut p = SingleTier::slow();
            reports.push(e.run(&mut p, 2).unwrap());
        }
        assert_eq!(reports[0], reports[1]);
    }
}
