//! Training graphs: layers of operations over tensors, with static liveness.

use crate::error::GraphError;
use crate::op::{Op, Operand};
use crate::tensor::{OpRef, Tensor, TensorId, TensorKind};

/// A named group of operations — the paper's unit of tensor management.
///
/// One "layer" here is one segment delimited by the paper's `add_layer()`
/// API call: a training step is the full flat sequence of layers (forward
/// layers followed by backward layers and the weight update).
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Debug name, e.g. `"res3b/fwd"` or `"res3b/bwd"`.
    pub name: String,
    /// Operations executed in order within the layer.
    pub ops: Vec<Op>,
}

/// A complete training-step graph for one model at one batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    name: String,
    batch: usize,
    tensors: Vec<Tensor>,
    layers: Vec<Layer>,
}

impl Graph {
    /// Model name, e.g. `"resnet32"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Batch size the graph was built for.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// All layers in execution order.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers (the paper's migration-interval unit).
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Tensor metadata by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn tensor(&self, id: TensorId) -> &Tensor {
        &self.tensors[id.index()]
    }

    /// All tensors.
    #[must_use]
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Number of tensors.
    #[must_use]
    pub fn num_tensors(&self) -> usize {
        self.tensors.len()
    }

    /// Tensors allocated before the training loop (weights, inputs, …).
    pub fn preallocated(&self) -> impl Iterator<Item = &Tensor> + '_ {
        self.tensors.iter().filter(|t| t.preallocated())
    }

    /// Sum of all preallocated tensor bytes.
    #[must_use]
    pub fn preallocated_bytes(&self) -> u64 {
        self.preallocated().map(|t| t.bytes).sum()
    }

    /// Bytes of tensors live during `layer` (preallocated included).
    #[must_use]
    pub fn live_bytes_in_layer(&self, layer: usize) -> u64 {
        self.tensors.iter().filter(|t| t.live_in_layer(layer)).map(|t| t.bytes).sum()
    }

    /// Peak memory consumption of one training step: the maximum over layers
    /// of the live-tensor byte total. This is the paper's "peak memory
    /// consumption" used to size fast memory (e.g. 20% of peak).
    #[must_use]
    pub fn peak_live_bytes(&self) -> u64 {
        (0..self.layers.len().max(1))
            .map(|l| self.live_bytes_in_layer(l))
            .max()
            .unwrap_or(0)
    }

    /// Peak bytes of *short-lived* tensors live in any single layer — the
    /// size Sentinel must reserve in fast memory (Section IV-C).
    #[must_use]
    pub fn peak_short_lived_bytes(&self) -> u64 {
        (0..self.layers.len().max(1))
            .map(|l| {
                self.tensors
                    .iter()
                    .filter(|t| t.is_short_lived() && t.live_in_layer(l))
                    .map(|t| t.bytes)
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Peak *concurrent* bytes of short-lived tensors, at op granularity:
    /// a short-lived tensor occupies memory from its first to its last
    /// referencing op, and the reused reservation (Section IV-C) only needs
    /// to hold the maximum overlap — much less than the per-layer sum,
    /// because temporaries inside a layer are allocated and freed in
    /// sequence.
    #[must_use]
    pub fn peak_short_lived_concurrent_bytes(&self) -> u64 {
        let mut delta_at_op: Vec<(usize, i64)> = Vec::new(); // (linear op index, ±bytes)
        let mut linear = 0usize;
        let mut op_linear = std::collections::HashMap::new();
        for (li, layer) in self.layers.iter().enumerate() {
            for oi in 0..layer.ops.len() {
                op_linear.insert((li, oi), linear);
                linear += 1;
            }
        }
        for t in &self.tensors {
            if !t.is_short_lived() {
                continue;
            }
            if let (Some(f), Some(l)) = (t.first_ref, t.last_ref) {
                let start = op_linear[&(f.layer, f.op)];
                let end = op_linear[&(l.layer, l.op)];
                delta_at_op.push((start, t.bytes as i64));
                delta_at_op.push((end + 1, -(t.bytes as i64)));
            }
        }
        delta_at_op.sort_unstable();
        let (mut cur, mut peak) = (0i64, 0i64);
        for (_, d) in delta_at_op {
            cur += d;
            peak = peak.max(cur);
        }
        peak.max(0) as u64
    }

    /// Largest single long-lived (or preallocated) tensor, in bytes. Together
    /// with [`Graph::peak_short_lived_bytes`] this gives the paper's lower
    /// bound on usable fast-memory size (Section IV-E).
    #[must_use]
    pub fn largest_long_lived_bytes(&self) -> u64 {
        self.tensors.iter().filter(|t| !t.is_short_lived()).map(|t| t.bytes).max().unwrap_or(0)
    }

    /// Distinct tensors referenced by ops in the half-open layer range.
    #[must_use]
    pub fn tensors_used_in_layers(&self, start: usize, end: usize) -> Vec<TensorId> {
        let mut seen = vec![false; self.tensors.len()];
        let mut out = Vec::new();
        for layer in self.layers.iter().take(end.min(self.layers.len())).skip(start) {
            for op in &layer.ops {
                for t in op.referenced() {
                    if !seen[t.index()] {
                        seen[t.index()] = true;
                        out.push(t);
                    }
                }
            }
        }
        out
    }

    /// Total FLOPs of one training step.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().flat_map(|l| &l.ops).map(|o| o.flops).sum()
    }

    /// Total bytes referenced by one training step (passes included).
    #[must_use]
    pub fn total_bytes_touched(&self) -> u64 {
        self.layers
            .iter()
            .flat_map(|l| &l.ops)
            .map(|o| o.bytes_touched(|t| self.tensor(t).bytes))
            .sum()
    }
}

/// Incremental builder for [`Graph`].
///
/// ```
/// use sentinel_dnn::{GraphBuilder, OpKind, TensorKind};
///
/// # fn main() -> Result<(), sentinel_dnn::GraphError> {
/// let mut b = GraphBuilder::new("tiny", 4);
/// let w = b.tensor("w", 4096, TensorKind::Weight);
/// let x = b.tensor("x", 8192, TensorKind::Input);
/// let y = b.tensor("y", 8192, TensorKind::Activation);
///
/// b.begin_layer("fc/fwd");
/// b.op("fc", OpKind::MatMul, 1_000_000).reads(&[w, x]).writes(&[y]).push();
///
/// let g = b.finish()?;
/// assert_eq!(g.num_layers(), 1);
/// assert_eq!(g.tensor(y).layer_span(), Some((0, 0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    batch: usize,
    tensors: Vec<Tensor>,
    layers: Vec<Layer>,
}

impl GraphBuilder {
    /// Start building a graph for `name` at batch size `batch`.
    #[must_use]
    pub fn new(name: impl Into<String>, batch: usize) -> Self {
        GraphBuilder { name: name.into(), batch, tensors: Vec::new(), layers: Vec::new() }
    }

    /// Declare a tensor; its live range is derived from op references at
    /// [`GraphBuilder::finish`] time.
    pub fn tensor(&mut self, name: impl Into<String>, bytes: u64, kind: TensorKind) -> TensorId {
        let id = TensorId(self.tensors.len() as u32);
        self.tensors.push(Tensor { id, name: name.into(), bytes, kind, first_ref: None, last_ref: None });
        id
    }

    /// Open a new layer; subsequent ops are appended to it.
    pub fn begin_layer(&mut self, name: impl Into<String>) -> usize {
        self.layers.push(Layer { name: name.into(), ops: Vec::new() });
        self.layers.len() - 1
    }

    /// Start describing an op in the current layer (see [`OpBuilder`]).
    ///
    /// # Panics
    ///
    /// Panics if no layer has been opened.
    pub fn op(&mut self, name: impl Into<String>, kind: crate::OpKind, flops: u64) -> OpBuilder<'_> {
        assert!(!self.layers.is_empty(), "begin_layer must be called before op");
        OpBuilder {
            builder: self,
            op: Op { name: name.into(), kind, flops, reads: Vec::new(), writes: Vec::new() },
        }
    }

    /// Number of layers opened so far.
    #[must_use]
    pub fn layers_so_far(&self) -> usize {
        self.layers.len()
    }

    /// Validate and seal the graph, computing tensor live ranges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] when the graph is malformed: empty, a
    /// zero-sized tensor, an op referencing an undeclared tensor, or a
    /// runtime tensor read before it is written.
    pub fn finish(mut self) -> Result<Graph, GraphError> {
        if self.layers.is_empty() || self.layers.iter().all(|l| l.ops.is_empty()) {
            return Err(GraphError::Empty);
        }
        for t in &self.tensors {
            if t.bytes == 0 {
                return Err(GraphError::ZeroSizedTensor { tensor: t.id, name: t.name.clone() });
            }
        }
        let n = self.tensors.len();
        let mut written = vec![false; n];
        for (li, layer) in self.layers.iter().enumerate() {
            for (oi, op) in layer.ops.iter().enumerate() {
                let here = OpRef { layer: li, op: oi };
                for operand in &op.reads {
                    let idx = operand.tensor.index();
                    if idx >= n {
                        return Err(GraphError::UnknownTensor { tensor: operand.tensor, op: op.name.clone() });
                    }
                    if !written[idx] && !self.tensors[idx].preallocated() {
                        return Err(GraphError::ReadBeforeWrite {
                            tensor: operand.tensor,
                            name: self.tensors[idx].name.clone(),
                            op: op.name.clone(),
                        });
                    }
                    touch(&mut self.tensors[idx], here);
                }
                for operand in &op.writes {
                    let idx = operand.tensor.index();
                    if idx >= n {
                        return Err(GraphError::UnknownTensor { tensor: operand.tensor, op: op.name.clone() });
                    }
                    written[idx] = true;
                    touch(&mut self.tensors[idx], here);
                }
            }
        }
        Ok(Graph { name: self.name, batch: self.batch, tensors: self.tensors, layers: self.layers })
    }
}

fn touch(t: &mut Tensor, at: OpRef) {
    if t.first_ref.is_none() {
        t.first_ref = Some(at);
    }
    t.last_ref = Some(at);
}

/// Fluent construction of one [`Op`]; created by [`GraphBuilder::op`].
#[derive(Debug)]
pub struct OpBuilder<'a> {
    builder: &'a mut GraphBuilder,
    op: Op,
}

impl<'a> OpBuilder<'a> {
    /// Add single-pass read operands.
    #[must_use]
    pub fn reads(mut self, tensors: &[TensorId]) -> Self {
        self.op.reads.extend(tensors.iter().copied().map(Operand::once));
        self
    }

    /// Add a read operand traversed `passes` times.
    #[must_use]
    pub fn reads_n(mut self, tensor: TensorId, passes: u32) -> Self {
        self.op.reads.push(Operand::with_passes(tensor, passes));
        self
    }

    /// Add single-pass write operands.
    #[must_use]
    pub fn writes(mut self, tensors: &[TensorId]) -> Self {
        self.op.writes.extend(tensors.iter().copied().map(Operand::once));
        self
    }

    /// Add a write operand traversed `passes` times.
    #[must_use]
    pub fn writes_n(mut self, tensor: TensorId, passes: u32) -> Self {
        self.op.writes.push(Operand::with_passes(tensor, passes));
        self
    }

    /// Append the op to the current layer.
    pub fn push(self) {
        let layer = self.builder.layers.last_mut().expect("op requires an open layer");
        layer.ops.push(self.op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    fn two_layer_graph() -> Graph {
        let mut b = GraphBuilder::new("g", 2);
        let w = b.tensor("w", 100, TensorKind::Weight);
        let x = b.tensor("x", 200, TensorKind::Input);
        let act = b.tensor("act", 300, TensorKind::Activation);
        let tmp = b.tensor("tmp", 50, TensorKind::Temporary);
        let grad = b.tensor("grad", 100, TensorKind::WeightGrad);

        b.begin_layer("fwd");
        b.op("pad", OpKind::Pad, 10).reads(&[x]).writes(&[tmp]).push();
        b.op("conv", OpKind::Conv2d, 1000).reads(&[w, tmp]).writes(&[act]).push();

        b.begin_layer("bwd");
        b.op("dconv", OpKind::Conv2d, 2000).reads(&[w, act]).writes(&[grad]).push();
        b.op("update", OpKind::WeightUpdate, 100).reads(&[grad]).writes(&[w]).push();

        b.finish().unwrap()
    }

    #[test]
    fn liveness_is_derived_from_references() {
        let g = two_layer_graph();
        let tmp = &g.tensors()[3];
        assert!(tmp.is_short_lived());
        assert_eq!(tmp.layer_span(), Some((0, 0)));
        let act = &g.tensors()[2];
        assert!(!act.is_short_lived());
        assert_eq!(act.layer_span(), Some((0, 1)));
    }

    #[test]
    fn peak_memory_counts_live_tensors() {
        let g = two_layer_graph();
        // Layer 0: w(100) + x(200) + act(300) + tmp(50) + prealloc grad? no —
        // grad is runtime (WeightGrad is not preallocated), live only layer 1.
        assert_eq!(g.live_bytes_in_layer(0), 650);
        assert_eq!(g.live_bytes_in_layer(1), 100 + 200 + 300 + 100);
        assert_eq!(g.peak_live_bytes(), 700);
        // tmp (50) in layer 0; grad (100) is also short-lived — written and
        // consumed within the bwd layer — so the layer-1 peak wins.
        assert_eq!(g.peak_short_lived_bytes(), 100);
        // tmp and grad never overlap at op granularity either.
        assert_eq!(g.peak_short_lived_concurrent_bytes(), 100);
    }

    #[test]
    fn read_before_write_is_rejected() {
        let mut b = GraphBuilder::new("bad", 1);
        let a = b.tensor("a", 10, TensorKind::Activation);
        b.begin_layer("l");
        b.op("use", OpKind::Other, 1).reads(&[a]).push();
        assert!(matches!(b.finish(), Err(GraphError::ReadBeforeWrite { .. })));
    }

    #[test]
    fn empty_graph_is_rejected() {
        let b = GraphBuilder::new("empty", 1);
        assert!(matches!(b.finish(), Err(GraphError::Empty)));
        let mut b2 = GraphBuilder::new("no-ops", 1);
        b2.begin_layer("l");
        assert!(matches!(b2.finish(), Err(GraphError::Empty)));
    }

    #[test]
    fn zero_sized_tensor_is_rejected() {
        let mut b = GraphBuilder::new("zero", 1);
        let t = b.tensor("z", 0, TensorKind::Temporary);
        b.begin_layer("l");
        b.op("w", OpKind::Other, 1).writes(&[t]).push();
        assert!(matches!(b.finish(), Err(GraphError::ZeroSizedTensor { .. })));
    }

    #[test]
    fn tensors_used_in_layers_dedups() {
        let g = two_layer_graph();
        let used = g.tensors_used_in_layers(0, 2);
        assert_eq!(used.len(), 5);
        let fwd_only = g.tensors_used_in_layers(0, 1);
        assert_eq!(fwd_only.len(), 4); // w, x, tmp, act
    }

    #[test]
    fn totals() {
        let g = two_layer_graph();
        assert_eq!(g.total_flops(), 3110);
        assert!(g.total_bytes_touched() > 0);
        assert_eq!(g.preallocated_bytes(), 300); // w + x
        assert_eq!(g.largest_long_lived_bytes(), 300); // act
    }
}

sentinel_util::impl_to_json!(Layer { name, ops });
sentinel_util::impl_to_json!(Graph { name, batch, tensors, layers });
