//! The memory-management policy interface and reference policies.

use crate::alloc::PoolSpec;
use crate::ctx::ExecCtx;
use crate::tensor::{OpRef, Tensor, TensorId};
use sentinel_mem::{AccessKind, Tier};

/// A heterogeneous-memory management policy.
///
/// The [`crate::Executor`] drives one training run and calls back into the
/// policy at every decision point: where to place a new tensor
/// ([`MemoryManager::tier_for`]), which pool it allocates from — and hence
/// which tensors it may share pages with ([`MemoryManager::pool_for`]) —
/// plus hooks at step/layer/op/access boundaries where the policy may issue
/// migrations, stall for copies, or re-place tensors through the context.
///
/// Sentinel, all eight baselines, and the trivial single-tier references are
/// implementations of this trait, so every comparison in the evaluation is a
/// pure policy comparison over identical simulated hardware.
#[allow(unused_variables)]
pub trait MemoryManager {
    /// Short policy name used in reports (e.g. `"sentinel"`, `"ial"`).
    fn name(&self) -> &str;

    /// Called once before any allocation.
    fn on_train_begin(&mut self, ctx: &mut ExecCtx<'_>) {}

    /// Called at the start of every training step.
    fn on_step_begin(&mut self, ctx: &mut ExecCtx<'_>) {}

    /// Pool (page-sharing group) for a tensor about to be allocated.
    fn pool_for(&mut self, tensor: &Tensor, ctx: &ExecCtx<'_>) -> PoolSpec {
        PoolSpec::default_packed()
    }

    /// Tier for the newly populated pages of a tensor about to be allocated.
    fn tier_for(&mut self, tensor: &Tensor, ctx: &ExecCtx<'_>) -> Tier {
        Tier::Fast
    }

    /// Called after a tensor is successfully allocated.
    fn on_alloc(&mut self, tensor: TensorId, ctx: &mut ExecCtx<'_>) {}

    /// Called when an allocation into `tier` fails for lack of space.
    /// Return `true` after making room (e.g. by synchronously demoting
    /// pages) to have the executor retry; `false` to overflow to the other
    /// tier.
    fn on_capacity_pressure(&mut self, tier: Tier, needed_pages: u64, ctx: &mut ExecCtx<'_>) -> bool {
        false
    }

    /// Called before the first op of every layer.
    fn before_layer(&mut self, layer: usize, ctx: &mut ExecCtx<'_>) {}

    /// Called after the last op of every layer.
    fn after_layer(&mut self, layer: usize, ctx: &mut ExecCtx<'_>) {}

    /// Called before each op executes (outputs are already allocated).
    fn before_op(&mut self, at: OpRef, ctx: &mut ExecCtx<'_>) {}

    /// Called after each op executes (before its dead tensors are freed).
    fn after_op(&mut self, at: OpRef, ctx: &mut ExecCtx<'_>) {}

    /// Called immediately before the executor touches `tensor`.
    /// On-demand policies (UM) fault pages in here.
    fn before_access(&mut self, tensor: TensorId, kind: AccessKind, ctx: &mut ExecCtx<'_>) {}

    /// Called just before a dead tensor's memory is released.
    fn on_free(&mut self, tensor: TensorId, ctx: &mut ExecCtx<'_>) {}

    /// Called at the end of every training step.
    fn on_step_end(&mut self, ctx: &mut ExecCtx<'_>) {}

    /// Drain the per-interval migration ledger for the step that just
    /// ended. Invoked by the executor only while tracing is enabled, after
    /// the step's final poll and before its stats snapshot, so a
    /// ledger-keeping policy can close its last open interval against the
    /// final counter values. Policies that do not track intervals (every
    /// baseline) keep the empty default.
    fn step_ledger(&mut self, ctx: &ExecCtx<'_>) -> Vec<crate::IntervalRecord> {
        Vec::new()
    }

    /// Drain human-readable warnings raised during the step that just ended
    /// (e.g. an adaptive policy's degraded re-solve). Invoked by the
    /// executor after the step's final poll, every step — unlike
    /// [`MemoryManager::step_ledger`] this is not gated on tracing, so a
    /// degraded run surfaces its warnings even in plain reports. Policies
    /// with nothing to report keep the empty default.
    fn step_warnings(&mut self) -> Vec<String> {
        Vec::new()
    }

    /// Called once after the last step.
    fn on_train_end(&mut self, ctx: &mut ExecCtx<'_>) {}
}

/// Reference policy: place everything in one tier, never migrate.
///
/// `SingleTier::fast()` is the paper's "fast memory-only" upper bound (the
/// red line of Figure 7); `SingleTier::slow()` is the "slow memory-only"
/// baseline every speedup is normalized against.
#[derive(Debug, Clone, Copy)]
pub struct SingleTier {
    tier: Tier,
    label: &'static str,
}

impl SingleTier {
    /// Everything in fast memory.
    #[must_use]
    pub fn fast() -> Self {
        SingleTier { tier: Tier::Fast, label: "fast-only" }
    }

    /// Everything in slow memory.
    #[must_use]
    pub fn slow() -> Self {
        SingleTier { tier: Tier::Slow, label: "slow-only" }
    }

    /// The tier used.
    #[must_use]
    pub fn tier(&self) -> Tier {
        self.tier
    }
}

impl MemoryManager for SingleTier {
    fn name(&self) -> &str {
        self.label
    }

    fn tier_for(&mut self, _tensor: &Tensor, _ctx: &ExecCtx<'_>) -> Tier {
        self.tier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tier_constructors() {
        assert_eq!(SingleTier::fast().tier(), Tier::Fast);
        assert_eq!(SingleTier::slow().tier(), Tier::Slow);
        assert_eq!(SingleTier::fast().name(), "fast-only");
        assert_eq!(SingleTier::slow().name(), "slow-only");
    }

    #[test]
    fn trait_defaults_are_benign() {
        // A policy implementing only `name` compiles and uses defaults.
        struct Minimal;
        impl MemoryManager for Minimal {
            fn name(&self) -> &str {
                "minimal"
            }
        }
        let mut m = Minimal;
        assert_eq!(m.name(), "minimal");
        let t = Tensor {
            id: TensorId(0),
            name: "t".into(),
            bytes: 1,
            kind: crate::TensorKind::Temporary,
            first_ref: None,
            last_ref: None,
        };
        // Default pool/tier choices.
        let g = {
            let mut b = crate::GraphBuilder::new("g", 1);
            let x = b.tensor("x", 1, crate::TensorKind::Input);
            b.begin_layer("l");
            b.op("o", crate::OpKind::Other, 1).reads(&[x]).push();
            b.finish().unwrap()
        };
        let ctx = ExecCtx::new(&g, sentinel_mem::MemorySystem::new(sentinel_mem::HmConfig::testing()));
        assert_eq!(m.pool_for(&t, &ctx), PoolSpec::default_packed());
        assert_eq!(m.tier_for(&t, &ctx), Tier::Fast);
    }
}
