//! Step and training reports.

use sentinel_mem::{FaultCounters, Ns};
use sentinel_util::{Json, ToJson};

/// Where the time of one training step went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepBreakdown {
    /// Operator compute time.
    pub compute_ns: Ns,
    /// Time spent in memory accesses (all tiers, cache included).
    pub memory_ns: Ns,
    /// Time stalled waiting (migration completion, policy waits).
    pub stall_ns: Ns,
    /// Capuchin-style recomputation time.
    pub recompute_ns: Ns,
    /// Portion of `memory_ns` that was profiling fault overhead.
    pub profiling_fault_ns: Ns,
}

impl StepBreakdown {
    /// Total accounted time.
    #[must_use]
    pub fn total_ns(&self) -> Ns {
        self.compute_ns + self.memory_ns + self.stall_ns + self.recompute_ns
    }
}

/// Outcome of one training step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Step index (0-based).
    pub step: usize,
    /// Wall-clock (simulated) duration of the step.
    pub duration_ns: Ns,
    /// Cost breakdown.
    pub breakdown: StepBreakdown,
    /// Bytes migrated slow→fast during the step.
    pub promoted_bytes: u64,
    /// Bytes migrated fast→slow during the step.
    pub demoted_bytes: u64,
    /// Main-memory accesses to fast memory during the step.
    pub fast_accesses: u64,
    /// Main-memory accesses to slow memory during the step.
    pub slow_accesses: u64,
    /// Profiling faults taken during the step.
    pub faults: u64,
    /// Peak mapped fast-tier pages observed so far.
    pub peak_fast_pages: u64,
    /// Peak mapped pages (both tiers) observed so far.
    pub peak_total_pages: u64,
    /// Fault-injection activity during the step (all zero on pristine runs).
    pub fault: FaultCounters,
}

impl StepReport {
    /// Total bytes migrated in either direction.
    #[must_use]
    pub fn migrated_bytes(&self) -> u64 {
        self.promoted_bytes + self.demoted_bytes
    }
}

/// Outcome of a whole training run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainReport {
    /// Model name.
    pub model: String,
    /// Policy name.
    pub policy: String,
    /// Batch size.
    pub batch: usize,
    /// Per-step reports in order.
    pub steps: Vec<StepReport>,
}

impl TrainReport {
    /// Number of steps executed.
    #[must_use]
    pub fn steps_executed(&self) -> usize {
        self.steps.len()
    }

    /// Mean step duration over the *steady state*: the last half of the run,
    /// which excludes profiling and test-and-trial steps.
    #[must_use]
    pub fn steady_step_ns(&self) -> Ns {
        if self.steps.is_empty() {
            return 0;
        }
        let tail = &self.steps[self.steps.len() / 2..];
        tail.iter().map(|s| s.duration_ns).sum::<Ns>() / tail.len() as u64
    }

    /// Steady-state training throughput in samples per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let ns = self.steady_step_ns();
        if ns == 0 {
            0.0
        } else {
            self.batch as f64 * 1e9 / ns as f64
        }
    }

    /// Bytes migrated (both directions) in one steady-state step.
    #[must_use]
    pub fn steady_migrated_bytes(&self) -> u64 {
        if self.steps.is_empty() {
            return 0;
        }
        let tail = &self.steps[self.steps.len() / 2..];
        tail.iter().map(StepReport::migrated_bytes).sum::<u64>() / tail.len() as u64
    }

    /// Mean steady-state breakdown.
    #[must_use]
    pub fn steady_breakdown(&self) -> StepBreakdown {
        if self.steps.is_empty() {
            return StepBreakdown::default();
        }
        let tail = &self.steps[self.steps.len() / 2..];
        let n = tail.len() as u64;
        let mut acc = StepBreakdown::default();
        for s in tail {
            acc.compute_ns += s.breakdown.compute_ns;
            acc.memory_ns += s.breakdown.memory_ns;
            acc.stall_ns += s.breakdown.stall_ns;
            acc.recompute_ns += s.breakdown.recompute_ns;
            acc.profiling_fault_ns += s.breakdown.profiling_fault_ns;
        }
        StepBreakdown {
            compute_ns: acc.compute_ns / n,
            memory_ns: acc.memory_ns / n,
            stall_ns: acc.stall_ns / n,
            recompute_ns: acc.recompute_ns / n,
            profiling_fault_ns: acc.profiling_fault_ns / n,
        }
    }

    /// Peak fast-tier pages over the run.
    #[must_use]
    pub fn peak_fast_pages(&self) -> u64 {
        self.steps.iter().map(|s| s.peak_fast_pages).max().unwrap_or(0)
    }

    /// Peak mapped pages (both tiers) over the run.
    #[must_use]
    pub fn peak_total_pages(&self) -> u64 {
        self.steps.iter().map(|s| s.peak_total_pages).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_durations(durations: &[Ns]) -> TrainReport {
        TrainReport {
            model: "m".into(),
            policy: "p".into(),
            batch: 32,
            steps: durations
                .iter()
                .enumerate()
                .map(|(i, &d)| StepReport { step: i, duration_ns: d, ..StepReport::default() })
                .collect(),
        }
    }

    #[test]
    fn steady_state_skips_warmup() {
        let r = report_with_durations(&[1_000_000, 100, 100, 100]);
        assert_eq!(r.steady_step_ns(), 100);
    }

    #[test]
    fn throughput_is_batch_over_step_time() {
        let r = report_with_durations(&[1_000_000_000, 1_000_000_000]);
        assert!((r.throughput() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_zeroed() {
        let r = TrainReport::default();
        assert_eq!(r.steady_step_ns(), 0);
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.steady_migrated_bytes(), 0);
        assert_eq!(r.peak_fast_pages(), 0);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = StepBreakdown { compute_ns: 1, memory_ns: 2, stall_ns: 3, recompute_ns: 4, profiling_fault_ns: 1 };
        assert_eq!(b.total_ns(), 10);
    }

    #[test]
    fn migrated_bytes_sums_directions() {
        let s = StepReport { promoted_bytes: 10, demoted_bytes: 5, ..StepReport::default() };
        assert_eq!(s.migrated_bytes(), 15);
    }

    #[test]
    fn fault_counters_serialize_only_when_active() {
        let pristine = StepReport::default().to_json();
        assert!(pristine.get("fault").is_none());
        let mut s = StepReport::default();
        s.fault.migration_retries = 2;
        let j = s.to_json();
        assert_eq!(j.get("fault").and_then(|f| f.get("migration_retries")), Some(&Json::U64(2)));
    }
}

sentinel_util::impl_to_json!(StepBreakdown {
    compute_ns,
    memory_ns,
    stall_ns,
    recompute_ns,
    profiling_fault_ns,
});

// Hand-written (not `impl_to_json!`) so pristine runs keep the exact
// historical serialization: the `fault` member is emitted only when any
// counter is nonzero, leaving fault-free `results/*.json` byte-identical
// to builds that predate fault injection.
impl ToJson for StepReport {
    fn to_json(&self) -> Json {
        let mut members: Vec<(&str, Json)> = vec![
            ("step", self.step.to_json()),
            ("duration_ns", self.duration_ns.to_json()),
            ("breakdown", self.breakdown.to_json()),
            ("promoted_bytes", self.promoted_bytes.to_json()),
            ("demoted_bytes", self.demoted_bytes.to_json()),
            ("fast_accesses", self.fast_accesses.to_json()),
            ("slow_accesses", self.slow_accesses.to_json()),
            ("faults", self.faults.to_json()),
            ("peak_fast_pages", self.peak_fast_pages.to_json()),
            ("peak_total_pages", self.peak_total_pages.to_json()),
        ];
        if !self.fault.is_zero() {
            members.push(("fault", self.fault.to_json()));
        }
        Json::obj(members)
    }
}

sentinel_util::impl_to_json!(TrainReport { model, policy, batch, steps });
