//! Step and training reports.

use sentinel_mem::{FaultCounters, Ns};
use sentinel_util::{Json, ToJson};

/// Where the time of one training step went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepBreakdown {
    /// Operator compute time.
    pub compute_ns: Ns,
    /// Time spent in memory accesses (all tiers, cache included).
    pub memory_ns: Ns,
    /// Time stalled waiting (migration completion, policy waits).
    pub stall_ns: Ns,
    /// Capuchin-style recomputation time.
    pub recompute_ns: Ns,
    /// Portion of `memory_ns` that was profiling fault overhead.
    pub profiling_fault_ns: Ns,
}

impl StepBreakdown {
    /// Total accounted time.
    #[must_use]
    pub fn total_ns(&self) -> Ns {
        self.compute_ns + self.memory_ns + self.stall_ns + self.recompute_ns
    }
}

/// One migration interval of a managed step, as recorded by a policy's
/// interval ledger (see [`crate::MemoryManager::step_ledger`]). Records
/// partition the step end-to-end, so summing any counter column over a
/// step's ledger reproduces the step-level delta exactly — the property
/// `tests/trace_transparency.rs` checks against [`StepReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalRecord {
    /// Interval index within the step.
    pub interval: usize,
    /// First layer of the interval.
    pub start_layer: usize,
    /// One past the last layer of the interval.
    pub end_layer: usize,
    /// End-of-interval outcome: 1 (prefetch landed), 2 (prefetch blocked
    /// by space) or 3 (interval began before its prefetch completed).
    pub case: u8,
    /// Case 3 resolution (`"wait"` or `"leave"`, empty otherwise).
    pub choice: String,
    /// Interval start, simulated time.
    pub start_ns: Ns,
    /// Interval end, simulated time.
    pub end_ns: Ns,
    /// Bytes migrated slow→fast that completed during the interval.
    pub promoted_bytes: u64,
    /// Bytes migrated fast→slow that completed during the interval.
    pub demoted_bytes: u64,
    /// Injected migration failures retried during the interval.
    pub migration_retries: u64,
    /// Migrations abandoned after exhausting retries during the interval.
    pub abandoned_migrations: u64,
    /// Time stalled on the Case 3 "wait" branch during the interval.
    pub stall_case3_ns: Ns,
}

/// Outcome of one training step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Step index (0-based).
    pub step: usize,
    /// Wall-clock (simulated) duration of the step.
    pub duration_ns: Ns,
    /// Cost breakdown.
    pub breakdown: StepBreakdown,
    /// Bytes migrated slow→fast during the step.
    pub promoted_bytes: u64,
    /// Bytes migrated fast→slow during the step.
    pub demoted_bytes: u64,
    /// Main-memory accesses to fast memory during the step.
    pub fast_accesses: u64,
    /// Main-memory accesses to slow memory during the step.
    pub slow_accesses: u64,
    /// Profiling faults taken during the step.
    pub faults: u64,
    /// Peak mapped fast-tier pages observed so far.
    pub peak_fast_pages: u64,
    /// Peak mapped pages (both tiers) observed so far.
    pub peak_total_pages: u64,
    /// Fault-injection activity during the step (all zero on pristine runs).
    pub fault: FaultCounters,
    /// Per-interval migration ledger (empty unless tracing was enabled and
    /// the policy tracks intervals).
    pub intervals: Vec<IntervalRecord>,
    /// Policy warnings raised during the step (e.g. a degraded adaptive
    /// re-solve); empty on healthy runs and serialized only when non-empty.
    pub warnings: Vec<String>,
}

impl StepReport {
    /// Total bytes migrated in either direction.
    #[must_use]
    pub fn migrated_bytes(&self) -> u64 {
        self.promoted_bytes + self.demoted_bytes
    }
}

/// Outcome of a whole training run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainReport {
    /// Model name.
    pub model: String,
    /// Policy name.
    pub policy: String,
    /// Batch size.
    pub batch: usize,
    /// Per-step reports in order.
    pub steps: Vec<StepReport>,
}

impl TrainReport {
    /// Number of steps executed.
    #[must_use]
    pub fn steps_executed(&self) -> usize {
        self.steps.len()
    }

    /// Mean step duration over the *steady state*: the last half of the run,
    /// which excludes profiling and test-and-trial steps.
    #[must_use]
    pub fn steady_step_ns(&self) -> Ns {
        if self.steps.is_empty() {
            return 0;
        }
        let tail = &self.steps[self.steps.len() / 2..];
        tail.iter().map(|s| s.duration_ns).sum::<Ns>() / tail.len() as u64
    }

    /// Steady-state training throughput in samples per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let ns = self.steady_step_ns();
        if ns == 0 {
            0.0
        } else {
            self.batch as f64 * 1e9 / ns as f64
        }
    }

    /// Bytes migrated (both directions) in one steady-state step.
    #[must_use]
    pub fn steady_migrated_bytes(&self) -> u64 {
        if self.steps.is_empty() {
            return 0;
        }
        let tail = &self.steps[self.steps.len() / 2..];
        tail.iter().map(StepReport::migrated_bytes).sum::<u64>() / tail.len() as u64
    }

    /// Mean steady-state breakdown.
    ///
    /// The four components of [`StepBreakdown::total_ns`] are summed first
    /// and the truncated mean of the *total* is distributed over them by
    /// largest remainder (ties broken in field order), so
    /// `steady_breakdown().total_ns()` always equals the truncated mean of
    /// the per-step totals — in particular it agrees with
    /// [`steady_step_ns`](Self::steady_step_ns) whenever each step's
    /// `duration_ns` matches its breakdown, as executor-produced steps do.
    /// Truncating each field independently could fall short by up to 3 ns.
    #[must_use]
    pub fn steady_breakdown(&self) -> StepBreakdown {
        if self.steps.is_empty() {
            return StepBreakdown::default();
        }
        let tail = &self.steps[self.steps.len() / 2..];
        let n = tail.len() as u64;
        let mut sums = [0u64; 4];
        let mut fault_sum = 0u64;
        for s in tail {
            sums[0] += s.breakdown.compute_ns;
            sums[1] += s.breakdown.memory_ns;
            sums[2] += s.breakdown.stall_ns;
            sums[3] += s.breakdown.recompute_ns;
            fault_sum += s.breakdown.profiling_fault_ns;
        }
        let mut means = [0u64; 4];
        let mut rems = [0u64; 4];
        for i in 0..4 {
            means[i] = sums[i] / n;
            rems[i] = sums[i] % n;
        }
        let extra = sums.iter().sum::<u64>() / n - means.iter().sum::<u64>();
        let mut order = [0usize, 1, 2, 3];
        order.sort_by(|&a, &b| rems[b].cmp(&rems[a]));
        for &i in order.iter().take(extra as usize) {
            means[i] += 1;
        }
        StepBreakdown {
            compute_ns: means[0],
            memory_ns: means[1],
            stall_ns: means[2],
            recompute_ns: means[3],
            // Not a component of `total_ns` (it is a portion of
            // `memory_ns`), so it keeps its independent truncated mean.
            profiling_fault_ns: fault_sum / n,
        }
    }

    /// Peak fast-tier pages over the run.
    #[must_use]
    pub fn peak_fast_pages(&self) -> u64 {
        self.steps.iter().map(|s| s.peak_fast_pages).max().unwrap_or(0)
    }

    /// Peak mapped pages (both tiers) over the run.
    #[must_use]
    pub fn peak_total_pages(&self) -> u64 {
        self.steps.iter().map(|s| s.peak_total_pages).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_durations(durations: &[Ns]) -> TrainReport {
        TrainReport {
            model: "m".into(),
            policy: "p".into(),
            batch: 32,
            steps: durations
                .iter()
                .enumerate()
                .map(|(i, &d)| StepReport { step: i, duration_ns: d, ..StepReport::default() })
                .collect(),
        }
    }

    #[test]
    fn steady_state_skips_warmup() {
        let r = report_with_durations(&[1_000_000, 100, 100, 100]);
        assert_eq!(r.steady_step_ns(), 100);
    }

    #[test]
    fn throughput_is_batch_over_step_time() {
        let r = report_with_durations(&[1_000_000_000, 1_000_000_000]);
        assert!((r.throughput() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_zeroed() {
        let r = TrainReport::default();
        assert_eq!(r.steady_step_ns(), 0);
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.steady_migrated_bytes(), 0);
        assert_eq!(r.peak_fast_pages(), 0);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = StepBreakdown { compute_ns: 1, memory_ns: 2, stall_ns: 3, recompute_ns: 4, profiling_fault_ns: 1 };
        assert_eq!(b.total_ns(), 10);
    }

    #[test]
    fn migrated_bytes_sums_directions() {
        let s = StepReport { promoted_bytes: 10, demoted_bytes: 5, ..StepReport::default() };
        assert_eq!(s.migrated_bytes(), 15);
    }

    #[test]
    fn steady_breakdown_total_matches_steady_step_on_awkward_tails() {
        // Steps whose duration equals their breakdown total (as the
        // executor guarantees), with component values chosen so that
        // truncating each field independently loses nanoseconds.
        for steps in [3usize, 5, 6, 7, 9, 13] {
            let r = TrainReport {
                model: "m".into(),
                policy: "p".into(),
                batch: 1,
                steps: (0..steps)
                    .map(|i| {
                        let breakdown = StepBreakdown {
                            compute_ns: 101 + i as Ns,
                            memory_ns: 53 + 2 * i as Ns,
                            stall_ns: 31 + 3 * i as Ns,
                            recompute_ns: 17 + 5 * i as Ns,
                            profiling_fault_ns: 7,
                        };
                        StepReport {
                            step: i,
                            duration_ns: breakdown.total_ns(),
                            breakdown,
                            ..StepReport::default()
                        }
                    })
                    .collect(),
            };
            let b = r.steady_breakdown();
            assert_eq!(
                b.total_ns(),
                r.steady_step_ns(),
                "tail of {steps} steps: breakdown mean disagrees with step mean"
            );
            // Remainder distribution never moves a component by more than 1.
            let tail = &r.steps[r.steps.len() / 2..];
            let n = tail.len() as Ns;
            let floor = tail.iter().map(|s| s.breakdown.compute_ns).sum::<Ns>() / n;
            assert!(b.compute_ns == floor || b.compute_ns == floor + 1);
        }
    }

    #[test]
    fn warnings_serialize_only_when_present() {
        let pristine = StepReport::default().to_json();
        assert!(pristine.get("warnings").is_none());
        let mut s = StepReport::default();
        s.warnings.push("re-solve degraded".to_string());
        match s.to_json().get("warnings") {
            Some(Json::Arr(rows)) => {
                assert_eq!(rows[0], Json::Str("re-solve degraded".to_string()));
            }
            other => panic!("warnings not serialized as an array: {other:?}"),
        }
    }

    #[test]
    fn interval_ledger_serializes_only_when_present() {
        let pristine = StepReport::default().to_json();
        assert!(pristine.get("intervals").is_none());
        let mut s = StepReport::default();
        s.intervals.push(IntervalRecord { interval: 0, case: 1, ..IntervalRecord::default() });
        let j = s.to_json();
        let rows = match j.get("intervals") {
            Some(Json::Arr(rows)) => rows,
            other => panic!("ledger not serialized as an array: {other:?}"),
        };
        assert_eq!(rows[0].get("case"), Some(&Json::U64(1)));
    }

    #[test]
    fn fault_counters_serialize_only_when_active() {
        let pristine = StepReport::default().to_json();
        assert!(pristine.get("fault").is_none());
        let mut s = StepReport::default();
        s.fault.migration_retries = 2;
        let j = s.to_json();
        assert_eq!(j.get("fault").and_then(|f| f.get("migration_retries")), Some(&Json::U64(2)));
    }
}

sentinel_util::impl_to_json!(StepBreakdown {
    compute_ns,
    memory_ns,
    stall_ns,
    recompute_ns,
    profiling_fault_ns,
});

sentinel_util::impl_to_json!(IntervalRecord {
    interval,
    start_layer,
    end_layer,
    case,
    choice,
    start_ns,
    end_ns,
    promoted_bytes,
    demoted_bytes,
    migration_retries,
    abandoned_migrations,
    stall_case3_ns,
});

// Hand-written (not `impl_to_json!`) so pristine runs keep the exact
// historical serialization: the `fault` member is emitted only when any
// counter is nonzero and the `intervals` ledger only when non-empty,
// leaving fault-free, trace-free `results/*.json` byte-identical to
// builds that predate fault injection and tracing.
impl ToJson for StepReport {
    fn to_json(&self) -> Json {
        let mut members: Vec<(&str, Json)> = vec![
            ("step", self.step.to_json()),
            ("duration_ns", self.duration_ns.to_json()),
            ("breakdown", self.breakdown.to_json()),
            ("promoted_bytes", self.promoted_bytes.to_json()),
            ("demoted_bytes", self.demoted_bytes.to_json()),
            ("fast_accesses", self.fast_accesses.to_json()),
            ("slow_accesses", self.slow_accesses.to_json()),
            ("faults", self.faults.to_json()),
            ("peak_fast_pages", self.peak_fast_pages.to_json()),
            ("peak_total_pages", self.peak_total_pages.to_json()),
        ];
        if !self.fault.is_zero() {
            members.push(("fault", self.fault.to_json()));
        }
        if !self.intervals.is_empty() {
            members.push(("intervals", self.intervals.to_json()));
        }
        if !self.warnings.is_empty() {
            members.push(("warnings", self.warnings.to_json()));
        }
        Json::obj(members)
    }
}

sentinel_util::impl_to_json!(TrainReport { model, policy, batch, steps });
