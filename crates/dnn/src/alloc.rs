//! Pooled virtual-memory allocator with page-tenancy tracking.
//!
//! Tensors are allocated from named *pools*. Each pool owns disjoint virtual
//! pages, so pages are never shared across pools — this is the mechanism
//! Sentinel's data reorganization uses to guarantee that short- and
//! long-lived tensors (rules 1–4 of Section IV-B) never share a page.
//! Within a *packed* pool a first-fit free list reuses address space at
//! sub-page granularity, which is how TensorFlow-style allocation produces
//! the page-level false sharing the paper characterizes; a *page-aligned*
//! pool rounds every allocation to whole pages, which is what the profiling
//! phase uses so page counts become tensor counts.

use sentinel_mem::{pages_for_bytes, MemorySystem, PageRange};
use std::collections::HashMap;

/// Sub-page allocation alignment for packed pools (TensorFlow uses 64 B).
pub const PACKED_ALIGN: u64 = 64;

/// Identifies a pool and its layout discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolSpec {
    /// Pool key; allocations with the same key share pages (if packed).
    pub key: u64,
    /// Whether every allocation is rounded to whole pages of its own.
    pub page_aligned: bool,
}

impl PoolSpec {
    /// The default packed pool (key 0) — models TensorFlow's BFC allocator.
    #[must_use]
    pub fn default_packed() -> Self {
        PoolSpec { key: 0, page_aligned: false }
    }

    /// A page-aligned pool (used during the profiling phase).
    #[must_use]
    pub fn page_aligned(key: u64) -> Self {
        PoolSpec { key, page_aligned: true }
    }

    /// A packed pool with the given key.
    #[must_use]
    pub fn packed(key: u64) -> Self {
        PoolSpec { key, page_aligned: false }
    }
}

/// A live allocation handed out by [`SegmentAllocator::alloc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Pool the bytes came from.
    pub pool: u64,
    /// Byte address within the simulated virtual address space.
    pub addr: u64,
    /// Rounded-up allocation size in bytes.
    pub bytes: u64,
    /// Pages covered by the allocation (may be shared with other tensors).
    pub pages: PageRange,
    /// Pages that became populated *because of* this allocation — the caller
    /// must map them into a tier.
    pub new_pages: Vec<PageRange>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Block {
    addr: u64,
    bytes: u64,
}

#[derive(Debug, Default)]
struct Pool {
    /// Free blocks sorted by address, coalesced.
    free: Vec<Block>,
}

impl Pool {
    /// First-fit allocation; returns the block address or `None`.
    fn take(&mut self, bytes: u64) -> Option<u64> {
        let idx = self.free.iter().position(|b| b.bytes >= bytes)?;
        let block = self.free[idx];
        if block.bytes == bytes {
            self.free.remove(idx);
        } else {
            self.free[idx] = Block { addr: block.addr + bytes, bytes: block.bytes - bytes };
        }
        Some(block.addr)
    }

    /// Return a block, coalescing with address-adjacent neighbours.
    fn give(&mut self, mut block: Block) {
        let pos = self.free.partition_point(|b| b.addr < block.addr);
        // Merge with next.
        if pos < self.free.len() && block.addr + block.bytes == self.free[pos].addr {
            block.bytes += self.free[pos].bytes;
            self.free.remove(pos);
        }
        // Merge with previous.
        if pos > 0 && self.free[pos - 1].addr + self.free[pos - 1].bytes == block.addr {
            self.free[pos - 1].bytes += block.bytes;
        } else {
            self.free.insert(pos, block);
        }
    }
}

/// The pooled allocator. See the module docs for the design.
#[derive(Debug)]
pub struct SegmentAllocator {
    page_size: u64,
    /// Pages reserved per growth step of a pool.
    chunk_pages: u64,
    pools: HashMap<u64, Pool>,
    /// Per-virtual-page tenant counts (grown on demand).
    tenancy: Vec<u32>,
    live_bytes: u64,
    peak_live_bytes: u64,
}

impl SegmentAllocator {
    /// An allocator for pages of `page_size` bytes.
    #[must_use]
    pub fn new(page_size: u64) -> Self {
        SegmentAllocator {
            page_size,
            chunk_pages: 256,
            pools: HashMap::new(),
            tenancy: Vec::new(),
            live_bytes: 0,
            peak_live_bytes: 0,
        }
    }

    /// Allocate `bytes` from the pool described by `spec`, reserving fresh
    /// virtual space from `mem` when the pool must grow.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn alloc(&mut self, mem: &mut MemorySystem, spec: PoolSpec, bytes: u64) -> Allocation {
        assert!(bytes > 0, "cannot allocate zero bytes");
        let align = if spec.page_aligned { self.page_size } else { PACKED_ALIGN };
        let size = bytes.div_ceil(align) * align;

        let addr = {
            let pool = self.pools.entry(spec.key).or_default();
            match pool.take(size) {
                Some(addr) => addr,
                None => {
                    let grow_pages = pages_for_bytes(size, self.page_size).max(self.chunk_pages);
                    let range = mem.reserve(grow_pages);
                    let pool = self.pools.entry(spec.key).or_default();
                    pool.give(Block { addr: range.first * self.page_size, bytes: grow_pages * self.page_size });
                    pool.take(size).expect("fresh chunk satisfies allocation")
                }
            }
        };

        let pages = self.pages_covering(addr, size);
        let new_pages = self.adjust_tenancy(pages, 1);
        self.live_bytes += size;
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
        Allocation { pool: spec.key, addr, bytes: size, pages, new_pages }
    }

    /// Release an allocation; returns the page ranges that became empty and
    /// must be unmapped by the caller.
    pub fn free(&mut self, allocation: &Allocation) -> Vec<PageRange> {
        let pool = self.pools.entry(allocation.pool).or_default();
        pool.give(Block { addr: allocation.addr, bytes: allocation.bytes });
        self.live_bytes -= allocation.bytes;
        self.adjust_tenancy(allocation.pages, -1)
    }

    /// Pages covered by a byte span.
    fn pages_covering(&self, addr: u64, bytes: u64) -> PageRange {
        let first = addr / self.page_size;
        let last = (addr + bytes - 1) / self.page_size;
        PageRange::new(first, last - first + 1)
    }

    /// Bump tenancy by ±1 over a range; returns ranges transitioning
    /// (0→1 on alloc, 1→0 on free), contiguified.
    fn adjust_tenancy(&mut self, pages: PageRange, delta: i32) -> Vec<PageRange> {
        if pages.end() as usize > self.tenancy.len() {
            self.tenancy.resize(pages.end() as usize, 0);
        }
        let mut transitions = Vec::new();
        let mut start: Option<u64> = None;
        for p in pages.iter() {
            let slot = &mut self.tenancy[p as usize];
            let transitioned = if delta > 0 {
                *slot += 1;
                *slot == 1
            } else {
                assert!(*slot > 0, "tenancy underflow on page {p}");
                *slot -= 1;
                *slot == 0
            };
            match (transitioned, start) {
                (true, None) => start = Some(p),
                (false, Some(s)) => {
                    transitions.push(PageRange::new(s, p - s));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            transitions.push(PageRange::new(s, pages.end() - s));
        }
        transitions
    }

    /// Number of tensors currently sharing `page` (zero if empty).
    #[must_use]
    pub fn tenants(&self, page: u64) -> u32 {
        self.tenancy.get(page as usize).copied().unwrap_or(0)
    }

    /// Live allocated bytes (after rounding).
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Peak of [`SegmentAllocator::live_bytes`] since construction.
    #[must_use]
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_bytes
    }

    /// Pages currently populated (tenancy > 0).
    #[must_use]
    pub fn populated_pages(&self) -> u64 {
        self.tenancy.iter().filter(|&&c| c > 0).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_mem::HmConfig;

    fn setup() -> (SegmentAllocator, MemorySystem) {
        let mem = MemorySystem::new(HmConfig::testing());
        (SegmentAllocator::new(4096), mem)
    }

    #[test]
    fn packed_allocations_share_pages() {
        let (mut a, mut mem) = setup();
        let spec = PoolSpec::default_packed();
        let x = a.alloc(&mut mem, spec, 1000);
        let y = a.alloc(&mut mem, spec, 1000);
        assert_eq!(x.pages, y.pages, "two small tensors land on the same page");
        assert_eq!(x.new_pages.len(), 1);
        assert!(y.new_pages.is_empty(), "second tenant maps no new pages");
        assert_eq!(a.tenants(x.pages.first), 2);
    }

    #[test]
    fn page_aligned_allocations_never_share() {
        let (mut a, mut mem) = setup();
        let spec = PoolSpec::page_aligned(1);
        let x = a.alloc(&mut mem, spec, 100);
        let y = a.alloc(&mut mem, spec, 100);
        assert!(!x.pages.overlaps(&y.pages));
        assert_eq!(x.bytes, 4096);
        assert_eq!(a.tenants(x.pages.first), 1);
    }

    #[test]
    fn distinct_pools_never_share_pages() {
        let (mut a, mut mem) = setup();
        let x = a.alloc(&mut mem, PoolSpec::packed(1), 100);
        let y = a.alloc(&mut mem, PoolSpec::packed(2), 100);
        assert!(!x.pages.overlaps(&y.pages));
    }

    #[test]
    fn free_returns_emptied_pages_and_enables_reuse() {
        let (mut a, mut mem) = setup();
        let spec = PoolSpec::default_packed();
        let x = a.alloc(&mut mem, spec, 8192);
        let unmap = a.free(&x);
        assert_eq!(unmap, vec![x.pages]);
        let y = a.alloc(&mut mem, spec, 8192);
        assert_eq!(y.addr, x.addr, "first-fit reuses the freed block");
    }

    #[test]
    fn shared_page_not_unmapped_until_last_tenant_leaves() {
        let (mut a, mut mem) = setup();
        let spec = PoolSpec::default_packed();
        let x = a.alloc(&mut mem, spec, 1000);
        let y = a.alloc(&mut mem, spec, 1000);
        assert!(a.free(&x).is_empty());
        assert_eq!(a.free(&y), vec![y.pages]);
    }

    #[test]
    fn coalescing_reassembles_blocks() {
        let (mut a, mut mem) = setup();
        let spec = PoolSpec::default_packed();
        let x = a.alloc(&mut mem, spec, 4096);
        let y = a.alloc(&mut mem, spec, 4096);
        let z = a.alloc(&mut mem, spec, 4096);
        a.free(&x);
        a.free(&z);
        a.free(&y); // middle free merges all three
        let big = a.alloc(&mut mem, spec, 3 * 4096);
        assert_eq!(big.addr, x.addr);
    }

    #[test]
    fn large_allocation_grows_pool_sufficiently() {
        let (mut a, mut mem) = setup();
        let spec = PoolSpec::default_packed();
        let big = a.alloc(&mut mem, spec, 300 * 4096); // bigger than a chunk
        assert_eq!(big.pages.count, 300);
        assert_eq!(big.new_pages.iter().map(|r| r.count).sum::<u64>(), 300);
    }

    #[test]
    fn live_and_peak_bytes_track() {
        let (mut a, mut mem) = setup();
        let spec = PoolSpec::default_packed();
        let x = a.alloc(&mut mem, spec, 64);
        let y = a.alloc(&mut mem, spec, 64);
        assert_eq!(a.live_bytes(), 128);
        a.free(&x);
        assert_eq!(a.live_bytes(), 64);
        assert_eq!(a.peak_live_bytes(), 128);
        a.free(&y);
        assert_eq!(a.populated_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot allocate zero bytes")]
    fn zero_byte_alloc_panics() {
        let (mut a, mut mem) = setup();
        let _ = a.alloc(&mut mem, PoolSpec::default_packed(), 0);
    }

    #[test]
    fn fragmented_free_produces_multiple_unmap_ranges() {
        let (mut a, mut mem) = setup();
        // Build an allocation spanning 3 pages, with a neighbour pinning the
        // middle page: alloc A = pages 0..3 (12 KiB), alloc B = small tensor
        // on page 1 (via address reuse). Construct by: A1 = 4096 (page 0),
        // A2 = 4096 (page 1), A3 = 4096 (page 2); free A1, A3.
        let spec = PoolSpec::default_packed();
        let a1 = a.alloc(&mut mem, spec, 4096);
        let a2 = a.alloc(&mut mem, spec, 4096);
        let a3 = a.alloc(&mut mem, spec, 4096);
        a.free(&a1);
        a.free(&a3);
        // Now allocate one 12 KiB tensor — does not fit fragmented holes,
        // grows the pool instead.
        let big = a.alloc(&mut mem, spec, 12288);
        assert!(big.addr >= a3.addr + a3.bytes || big.addr != a1.addr);
        // Freeing a2 empties page 1 only.
        let unmap = a.free(&a2);
        assert_eq!(unmap, vec![a2.pages]);
    }
}
