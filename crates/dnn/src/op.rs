//! Operations and their analytic cost model.

use crate::tensor::TensorId;

/// The kind of a dataflow operation.
///
/// The set covers the primitives of the five evaluated model families
/// (ResNet, BERT, LSTM, MobileNet, DCGAN) plus the tensor-processing helper
/// ops the paper highlights as sources of short-lived temporaries (padding,
/// transpose, expansion, concatenation, squeeze — Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OpKind {
    /// 2-D convolution (`nn.conv2d`).
    Conv2d,
    /// Depthwise separable convolution (MobileNet).
    DepthwiseConv2d,
    /// Transposed convolution (DCGAN generator).
    ConvTranspose2d,
    /// Dense matrix multiplication.
    MatMul,
    /// Batch normalization (`nn.bn`).
    BatchNorm,
    /// Layer normalization (BERT).
    LayerNorm,
    /// Elementwise activation (`nn.relu`, GELU, tanh, …).
    Activation,
    /// Softmax.
    Softmax,
    /// Pooling.
    Pool,
    /// Elementwise addition (residual connections).
    Add,
    /// Concatenation.
    Concat,
    /// Transpose / permutation.
    Transpose,
    /// Padding.
    Pad,
    /// Embedding lookup.
    Embedding,
    /// One LSTM cell step (fused gates).
    LstmCell,
    /// Scaled dot-product attention core.
    Attention,
    /// Dropout.
    Dropout,
    /// Loss computation.
    Loss,
    /// Optimizer weight update (SGD/Adam).
    WeightUpdate,
    /// Anything else.
    Other,
}

impl OpKind {
    /// Whether the op is a convolution whose *input* tensors vDNN offloads.
    #[must_use]
    pub fn is_conv(self) -> bool {
        matches!(self, OpKind::Conv2d | OpKind::DepthwiseConv2d | OpKind::ConvTranspose2d)
    }
}

/// One operand reference: which tensor, and how many full passes over it the
/// op makes in main memory.
///
/// `passes > 1` models operations that stream a tensor repeatedly (im2col
/// convolution re-reads the input; attention re-reads keys per query block).
/// Combined with the cache filter this produces the skewed per-tensor
/// main-memory access counts of the paper's Observation 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operand {
    /// The tensor referenced.
    pub tensor: TensorId,
    /// Full traversals of the tensor performed by the op (≥ 1).
    pub passes: u32,
}

impl Operand {
    /// An operand traversed once.
    #[must_use]
    pub fn once(tensor: TensorId) -> Self {
        Operand { tensor, passes: 1 }
    }

    /// An operand traversed `passes` times.
    #[must_use]
    pub fn with_passes(tensor: TensorId, passes: u32) -> Self {
        Operand { tensor, passes: passes.max(1) }
    }
}

impl From<TensorId> for Operand {
    fn from(tensor: TensorId) -> Self {
        Operand::once(tensor)
    }
}

/// A dataflow operation: reads some tensors, computes, writes others.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Debug name, e.g. `"res2a/conv1"`.
    pub name: String,
    /// Operation kind.
    pub kind: OpKind,
    /// Floating-point operations performed (drives compute time).
    pub flops: u64,
    /// Tensors read.
    pub reads: Vec<Operand>,
    /// Tensors written (outputs and in-place updates).
    pub writes: Vec<Operand>,
}

impl Op {
    /// Every tensor the op references (reads then writes, with duplicates).
    pub fn referenced(&self) -> impl Iterator<Item = TensorId> + '_ {
        self.reads.iter().chain(self.writes.iter()).map(|o| o.tensor)
    }

    /// Total bytes the op moves, given a size lookup.
    pub fn bytes_touched(&self, size_of: impl Fn(TensorId) -> u64) -> u64 {
        self.reads
            .iter()
            .chain(self.writes.iter())
            .map(|o| size_of(o.tensor) * u64::from(o.passes))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_passes_floor_at_one() {
        assert_eq!(Operand::with_passes(TensorId(0), 0).passes, 1);
        assert_eq!(Operand::with_passes(TensorId(0), 3).passes, 3);
        assert_eq!(Operand::once(TensorId(1)).passes, 1);
        let o: Operand = TensorId(2).into();
        assert_eq!(o.passes, 1);
    }

    #[test]
    fn conv_detection() {
        assert!(OpKind::Conv2d.is_conv());
        assert!(OpKind::DepthwiseConv2d.is_conv());
        assert!(OpKind::ConvTranspose2d.is_conv());
        assert!(!OpKind::MatMul.is_conv());
    }

    #[test]
    fn bytes_touched_respects_passes() {
        let op = Op {
            name: "conv".into(),
            kind: OpKind::Conv2d,
            flops: 100,
            reads: vec![Operand::with_passes(TensorId(0), 2)],
            writes: vec![Operand::once(TensorId(1))],
        };
        let size = |t: TensorId| if t == TensorId(0) { 100 } else { 10 };
        assert_eq!(op.bytes_touched(size), 210);
        assert_eq!(op.referenced().count(), 2);
    }
}

impl sentinel_util::ToJson for OpKind {
    fn to_json(&self) -> sentinel_util::Json {
        sentinel_util::Json::Str(format!("{self:?}"))
    }
}

sentinel_util::impl_to_json!(Operand { tensor, passes });
sentinel_util::impl_to_json!(Op { name, kind, flops, reads, writes });
