//! The execution context shared between the executor and memory policies.

use crate::alloc::{Allocation, PoolSpec, SegmentAllocator};
use crate::error::ExecError;
use crate::graph::Graph;
use crate::report::StepBreakdown;
use crate::tensor::{Tensor, TensorId};
use sentinel_mem::{AccessKind, AccessReport, MemError, MemorySystem, Ns, Tier};

/// Mutable state of a training run: simulated clock, memory system,
/// allocator and per-tensor placements.
///
/// Policies receive `&mut ExecCtx` in every [`crate::MemoryManager`] hook
/// and use it to issue migrations, stall for copies, or re-place tensors.
#[derive(Debug)]
pub struct ExecCtx<'g> {
    graph: &'g Graph,
    mem: MemorySystem,
    alloc: SegmentAllocator,
    placements: Vec<Option<Allocation>>,
    now: Ns,
    step: usize,
    breakdown: StepBreakdown,
}

impl<'g> ExecCtx<'g> {
    /// Build a context for one graph over one memory system.
    #[must_use]
    pub fn new(graph: &'g Graph, mem: MemorySystem) -> Self {
        let alloc = SegmentAllocator::new(mem.page_size());
        ExecCtx {
            graph,
            mem,
            alloc,
            placements: vec![None; graph.num_tensors()],
            now: 0,
            step: 0,
            breakdown: StepBreakdown::default(),
        }
    }

    // ------------------------------------------------------------- queries

    /// The graph being trained.
    #[must_use]
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Index of the training step currently executing (0-based).
    #[must_use]
    pub fn step(&self) -> usize {
        self.step
    }

    /// Shared view of the memory system.
    #[must_use]
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable access to the memory system (for custom policy logic).
    #[must_use]
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Shared view of the allocator.
    #[must_use]
    pub fn allocator(&self) -> &SegmentAllocator {
        &self.alloc
    }

    /// Placement of a tensor, if currently allocated.
    #[must_use]
    pub fn placement(&self, t: TensorId) -> Option<&Allocation> {
        self.placements[t.index()].as_ref()
    }

    /// Whether a tensor currently has memory.
    #[must_use]
    pub fn is_live(&self, t: TensorId) -> bool {
        self.placements[t.index()].is_some()
    }

    /// The running cost breakdown of the current step.
    #[must_use]
    pub fn breakdown(&self) -> &StepBreakdown {
        &self.breakdown
    }

    // ------------------------------------------------------------ lifecycle

    pub(crate) fn begin_step(&mut self, step: usize) {
        self.step = step;
        self.breakdown = StepBreakdown::default();
    }

    pub(crate) fn take_breakdown(&mut self) -> StepBreakdown {
        std::mem::take(&mut self.breakdown)
    }

    /// Consume the context, returning the memory system (for post-run stats).
    #[must_use]
    pub fn into_mem(self) -> MemorySystem {
        self.mem
    }

    // ------------------------------------------------------------- actions

    /// Allocate memory for `t` from `spec`, mapping any newly populated
    /// pages into `tier`.
    ///
    /// # Errors
    ///
    /// [`ExecError::AlreadyAllocated`] if `t` is already live;
    /// [`ExecError::Mem`] with [`MemError::CapacityExceeded`] if `tier`
    /// cannot hold the new pages (the allocator state is rolled back).
    pub fn allocate_with(&mut self, t: TensorId, spec: PoolSpec, tier: Tier) -> Result<(), ExecError> {
        if self.is_live(t) {
            return Err(ExecError::AlreadyAllocated { tensor: t });
        }
        let bytes = self.graph.tensor(t).bytes;
        let allocation = self.alloc.alloc(&mut self.mem, spec, bytes);
        let new_pages: u64 = allocation.new_pages.iter().map(|r| r.count).sum();
        if new_pages > self.mem.free_pages(tier) {
            self.alloc.free(&allocation);
            return Err(MemError::CapacityExceeded {
                tier,
                requested_pages: new_pages,
                free_pages: self.mem.free_pages(tier),
            }
            .into());
        }
        for range in &allocation.new_pages {
            self.mem.map(*range, tier, self.now)?;
        }
        self.placements[t.index()] = Some(allocation);
        Ok(())
    }

    /// Free `t`'s memory, unmapping pages that became empty.
    ///
    /// # Errors
    ///
    /// [`ExecError::NotAllocated`] if the tensor has no live allocation.
    pub fn release(&mut self, t: TensorId) -> Result<(), ExecError> {
        let allocation =
            self.placements[t.index()].take().ok_or(ExecError::NotAllocated { tensor: t })?;
        for range in self.alloc.free(&allocation) {
            self.mem.unmap(range, self.now)?;
        }
        Ok(())
    }

    /// Perform one timed pass over tensor `t`.
    ///
    /// # Errors
    ///
    /// [`ExecError::NotAllocated`] if the tensor has no live allocation.
    pub fn access_tensor(&mut self, t: TensorId, kind: AccessKind) -> Result<AccessReport, ExecError> {
        let allocation =
            self.placements[t.index()].as_ref().ok_or(ExecError::NotAllocated { tensor: t })?;
        let (pages, bytes) = (allocation.pages, self.graph.tensor(t).bytes);
        let report = self.mem.access(pages, bytes, kind, self.now);
        self.now += report.elapsed_ns;
        self.breakdown.memory_ns += report.elapsed_ns;
        self.breakdown.profiling_fault_ns += report.faults * self.mem.config().fault_overhead_ns;
        Ok(report)
    }

    /// Charge compute time for `flops` floating-point operations.
    pub fn charge_compute(&mut self, flops: u64) {
        let ns = (flops as f64 / self.mem.config().compute_flops_per_ns).ceil() as Ns;
        self.now += ns;
        self.breakdown.compute_ns += ns;
    }

    /// Charge recomputation time (Capuchin-style) for `flops`.
    pub fn charge_recompute(&mut self, flops: u64) {
        let ns = (flops as f64 / self.mem.config().compute_flops_per_ns).ceil() as Ns;
        self.now += ns;
        self.breakdown.recompute_ns += ns;
    }

    /// Advance the clock to `t` (no-op if already past), accounting the gap
    /// as stall time, and apply completed migrations.
    pub fn stall_until(&mut self, t: Ns) {
        if t > self.now {
            if std::env::var_os("SENTINEL_TRACE_STALL").is_some() && t - self.now > 1_000_000 {
                eprintln!("stall {}ms at {}", (t - self.now) / 1_000_000, std::backtrace::Backtrace::force_capture());
            }
            self.breakdown.stall_ns += t - self.now;
            self.now = t;
        }
        self.mem.poll(self.now);
    }

    /// Apply migrations completed by now.
    pub fn poll(&mut self) {
        self.mem.poll(self.now);
    }

    /// Migrate every page of `t` currently in `dest.other()` to `dest`.
    /// Returns the latest completion time, or `None` if nothing was eligible.
    ///
    /// Pages shared with other tensors move too — page-level false sharing
    /// drags neighbours along, exactly as with real `move_pages()`.
    ///
    /// # Errors
    ///
    /// [`ExecError::NotAllocated`] if the tensor has no live allocation;
    /// [`ExecError::Mem`] if a migration batch fails (e.g. destination full).
    pub fn migrate_tensor(&mut self, t: TensorId, dest: Tier) -> Result<Option<Ns>, ExecError> {
        let allocation =
            self.placements[t.index()].as_ref().ok_or(ExecError::NotAllocated { tensor: t })?;
        let pages = allocation.pages;
        let mut latest = None;
        for sub in self.mem.subranges_in_tier(pages, dest.other()) {
            let ticket = self.mem.migrate(sub, dest, self.now)?;
            latest = Some(latest.map_or(ticket.ready_at, |l: Ns| l.max(ticket.ready_at)));
        }
        Ok(latest)
    }

    /// Like [`ExecCtx::migrate_tensor`] but on the urgent demand-fault lane:
    /// the copy does not queue behind pending prefetch batches.
    ///
    /// # Errors
    ///
    /// Same as [`ExecCtx::migrate_tensor`].
    pub fn migrate_tensor_urgent(&mut self, t: TensorId, dest: Tier) -> Result<Option<Ns>, ExecError> {
        let allocation =
            self.placements[t.index()].as_ref().ok_or(ExecError::NotAllocated { tensor: t })?;
        let pages = allocation.pages;
        let mut latest = None;
        for sub in self.mem.subranges_in_tier(pages, dest.other()) {
            let ticket = self.mem.migrate_urgent(sub, dest, self.now)?;
            latest = Some(latest.map_or(ticket.ready_at, |l: Ns| l.max(ticket.ready_at)));
        }
        Ok(latest)
    }

    /// Bytes of `t` currently resident in `tier` (0 if not allocated).
    #[must_use]
    pub fn tensor_bytes_in(&self, t: TensorId, tier: Tier) -> u64 {
        match self.placement(t) {
            Some(a) => self
                .mem
                .subranges_in_tier(a.pages, tier)
                .iter()
                .map(|r| r.bytes(self.mem.page_size()))
                .sum(),
            None => 0,
        }
    }

    /// Metadata shortcut: the graph tensor for an id.
    #[must_use]
    pub fn tensor(&self, t: TensorId) -> &'g Tensor {
        self.graph.tensor(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::tensor::TensorKind;
    use crate::OpKind;
    use sentinel_mem::HmConfig;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new("g", 1);
        let x = b.tensor("x", 8192, TensorKind::Input);
        let y = b.tensor("y", 4096, TensorKind::Activation);
        b.begin_layer("l0");
        b.op("f", OpKind::Other, 1000).reads(&[x]).writes(&[y]).push();
        b.finish().unwrap()
    }

    fn ctx(g: &Graph) -> ExecCtx<'_> {
        ExecCtx::new(g, MemorySystem::new(HmConfig::testing()))
    }

    #[test]
    fn allocate_access_release_roundtrip() {
        let g = graph();
        let mut c = ctx(&g);
        let y = TensorId(1);
        c.allocate_with(y, PoolSpec::default_packed(), Tier::Fast).unwrap();
        assert!(c.is_live(y));
        let rep = c.access_tensor(y, AccessKind::Write).unwrap();
        assert!(rep.elapsed_ns > 0);
        assert_eq!(c.now(), rep.elapsed_ns);
        c.release(y).unwrap();
        assert!(!c.is_live(y));
        assert_eq!(c.mem().used_pages(Tier::Fast), 0);
    }

    #[test]
    fn capacity_failure_rolls_back() {
        let g = graph();
        let mut c = ctx(&g);
        // Fast tier holds 16 pages; x needs 2 — exhaust it first.
        for _ in 0..8 {
            let r = c.mem_mut().reserve(2);
            c.mem_mut().map(r, Tier::Fast, 0).unwrap();
        }
        let x = TensorId(0);
        let err = c.allocate_with(x, PoolSpec::default_packed(), Tier::Fast);
        assert!(matches!(err, Err(ExecError::Mem(MemError::CapacityExceeded { .. }))));
        assert!(!c.is_live(x));
        // Retry on slow succeeds.
        c.allocate_with(x, PoolSpec::default_packed(), Tier::Slow).unwrap();
    }

    #[test]
    fn compute_and_stall_account_in_breakdown() {
        let g = graph();
        let mut c = ctx(&g);
        c.charge_compute(1000); // 1 flop/ns → 1000 ns
        assert_eq!(c.breakdown().compute_ns, 1000);
        c.stall_until(5000);
        assert_eq!(c.breakdown().stall_ns, 4000);
        assert_eq!(c.now(), 5000);
        c.stall_until(100); // no-op backwards
        assert_eq!(c.now(), 5000);
    }

    #[test]
    fn migrate_tensor_moves_its_pages() {
        let g = graph();
        let mut c = ctx(&g);
        let x = TensorId(0);
        c.allocate_with(x, PoolSpec::default_packed(), Tier::Slow).unwrap();
        assert_eq!(c.tensor_bytes_in(x, Tier::Slow), 8192);
        let done = c.migrate_tensor(x, Tier::Fast).unwrap().unwrap();
        c.stall_until(done);
        assert_eq!(c.tensor_bytes_in(x, Tier::Fast), 8192);
        assert_eq!(c.tensor_bytes_in(x, Tier::Slow), 0);
        // A second migrate in the same direction is a no-op.
        assert_eq!(c.migrate_tensor(x, Tier::Fast).unwrap(), None);
    }

    #[test]
    fn access_unallocated_is_error() {
        let g = graph();
        let mut c = ctx(&g);
        assert!(matches!(
            c.access_tensor(TensorId(0), AccessKind::Read),
            Err(ExecError::NotAllocated { .. })
        ));
        assert!(matches!(c.release(TensorId(0)), Err(ExecError::NotAllocated { .. })));
    }
}
