//! Error types for the DNN substrate.

use crate::tensor::TensorId;
use sentinel_mem::MemError;
use std::error::Error;
use std::fmt;

/// Errors from graph construction ([`crate::GraphBuilder::finish`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph has no operations.
    Empty,
    /// A tensor was declared with zero bytes.
    ZeroSizedTensor {
        /// The offending tensor.
        tensor: TensorId,
        /// Its debug name.
        name: String,
    },
    /// An op referenced a tensor id that was never declared.
    UnknownTensor {
        /// The offending tensor id.
        tensor: TensorId,
        /// Name of the op making the reference.
        op: String,
    },
    /// A runtime-allocated tensor is read before any op writes it.
    ReadBeforeWrite {
        /// The offending tensor.
        tensor: TensorId,
        /// Its debug name.
        name: String,
        /// Name of the reading op.
        op: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph contains no operations"),
            GraphError::ZeroSizedTensor { tensor, name } => {
                write!(f, "tensor {tensor} ({name}) has zero size")
            }
            GraphError::UnknownTensor { tensor, op } => {
                write!(f, "op {op} references undeclared tensor {tensor}")
            }
            GraphError::ReadBeforeWrite { tensor, name, op } => {
                write!(f, "op {op} reads tensor {tensor} ({name}) before any write")
            }
        }
    }
}

impl Error for GraphError {}

/// Errors from training execution ([`crate::Executor`]).
#[derive(Debug)]
#[non_exhaustive]
pub enum ExecError {
    /// The underlying memory system rejected an operation.
    Mem(MemError),
    /// Neither tier had room for an allocation even after the policy's
    /// capacity-pressure handling.
    OutOfMemory {
        /// Tensor that could not be placed.
        tensor: TensorId,
        /// Bytes requested.
        bytes: u64,
    },
    /// A policy referenced a tensor with no live allocation.
    NotAllocated {
        /// The offending tensor.
        tensor: TensorId,
    },
    /// An allocation was requested for a tensor that is already live.
    AlreadyAllocated {
        /// The offending tensor.
        tensor: TensorId,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Mem(e) => write!(f, "memory system error: {e}"),
            ExecError::OutOfMemory { tensor, bytes } => {
                write!(f, "out of memory allocating {bytes} bytes for tensor {tensor}")
            }
            ExecError::NotAllocated { tensor } => {
                write!(f, "tensor {tensor} has no live allocation")
            }
            ExecError::AlreadyAllocated { tensor } => {
                write!(f, "tensor {tensor} is already allocated")
            }
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for ExecError {
    fn from(e: MemError) -> Self {
        ExecError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_error_display() {
        let e = GraphError::ReadBeforeWrite { tensor: TensorId(3), name: "x".into(), op: "conv".into() };
        let s = e.to_string();
        assert!(s.contains("t3"));
        assert!(s.contains("conv"));
    }

    #[test]
    fn exec_error_wraps_mem_error() {
        let e: ExecError = MemError::NotMapped { page: 5 }.into();
        assert!(e.to_string().contains("page 5"));
        assert!(e.source().is_some());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
        assert_send_sync::<ExecError>();
    }
}
