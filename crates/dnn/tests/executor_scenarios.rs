//! Executor scenario tests: custom policies exercising the full hook
//! surface — recompute-style release/restore, capacity-pressure handling,
//! pool grouping, and access interception.

use sentinel_dnn::{
    ExecCtx, Executor, Graph, GraphBuilder, MemoryManager, OpKind, PoolSpec, SingleTier, Tensor,
    TensorId, TensorKind,
};
use sentinel_mem::{AccessKind, HmConfig, MemorySystem, Tier};

/// A chain of N layers: act_i = f(act_{i-1}, w_i), with a backward pass.
fn chain(n: usize, act_bytes: u64) -> Graph {
    let mut b = GraphBuilder::new("chain", 1);
    let mut acts = Vec::new();
    let x = b.tensor("x", act_bytes, TensorKind::Input);
    let mut prev = x;
    let mut weights = Vec::new();
    for i in 0..n {
        let w = b.tensor(format!("w{i}"), 4096, TensorKind::Weight);
        let a = b.tensor(format!("a{i}"), act_bytes, TensorKind::Activation);
        b.begin_layer(format!("l{i}/fwd"));
        b.op(format!("f{i}"), OpKind::MatMul, 10_000).reads(&[prev, w]).writes(&[a]).push();
        weights.push(w);
        acts.push(a);
        prev = a;
    }
    let mut grad = b.tensor("g_last", act_bytes, TensorKind::ActivationGrad);
    b.begin_layer("loss/bwd");
    b.op("dloss", OpKind::Loss, 100).reads(&[prev]).writes(&[grad]).push();
    for i in (0..n).rev() {
        b.begin_layer(format!("l{i}/bwd"));
        let dw = b.tensor(format!("dw{i}"), 4096, TensorKind::WeightGrad);
        let upstream = if i > 0 { acts[i - 1] } else { x };
        b.op(format!("dfw{i}"), OpKind::MatMul, 10_000).reads(&[grad, acts[i]]).writes(&[dw]).push();
        let g_next = b.tensor(format!("g{i}"), act_bytes, TensorKind::ActivationGrad);
        b.op(format!("dfx{i}"), OpKind::MatMul, 10_000)
            .reads(&[grad, weights[i], upstream])
            .writes(&[g_next])
            .push();
        b.op(format!("upd{i}"), OpKind::WeightUpdate, 100).reads(&[dw]).writes(&[weights[i]]).push();
        grad = g_next;
    }
    b.finish().unwrap()
}

/// Releases every activation right after its forward layer and restores it
/// (recompute-style) when the backward pass asks — exercising the policy
/// APIs Capuchin builds on.
#[derive(Default)]
struct DropAndRestore {
    dropped: usize,
    restored: usize,
}

impl MemoryManager for DropAndRestore {
    fn name(&self) -> &str {
        "drop-and-restore"
    }
    fn tier_for(&mut self, _t: &Tensor, _ctx: &ExecCtx<'_>) -> Tier {
        Tier::Fast
    }
    fn after_layer(&mut self, layer: usize, ctx: &mut ExecCtx<'_>) {
        // The activation of the *previous* forward layer was just consumed
        // by this layer's op; its next use is in the backward pass, so it
        // can be dropped and recomputed later.
        if layer == 0 {
            return;
        }
        let graph = ctx.graph();
        if !graph.layers()[layer].name.ends_with("/fwd") {
            return;
        }
        let name = format!("a{}", layer - 1);
        let id = graph.tensors().iter().find(|t| t.name == name).map(|t| t.id);
        if let Some(id) = id {
            if ctx.is_live(id) {
                ctx.release(id).unwrap();
                self.dropped += 1;
            }
        }
    }
    fn before_access(&mut self, t: TensorId, _kind: AccessKind, ctx: &mut ExecCtx<'_>) {
        if !ctx.is_live(t) && !ctx.tensor(t).preallocated() {
            ctx.allocate_with(t, PoolSpec::default_packed(), Tier::Fast).unwrap();
            ctx.charge_recompute(10_000);
            self.restored += 1;
        }
    }
}

#[test]
fn release_and_restore_flow_works() {
    let g = chain(4, 16 << 10);
    let mem = MemorySystem::new(HmConfig::testing().with_fast_capacity(1 << 22).with_slow_capacity(1 << 24));
    let mut exec = Executor::new(&g, mem);
    let mut p = DropAndRestore::default();
    let r = exec.run(&mut p, 2).unwrap();
    assert!(p.dropped >= 4, "dropped {} activations", p.dropped);
    assert!(p.restored >= 4, "restored {} activations", p.restored);
    assert!(r.steps[1].breakdown.recompute_ns > 0);
}

/// Evicts its private "victim list" under capacity pressure and records the
/// retry behaviour of the executor's allocation loop.
struct PressureValve {
    pressure_calls: usize,
}

impl MemoryManager for PressureValve {
    fn name(&self) -> &str {
        "pressure-valve"
    }
    fn tier_for(&mut self, _t: &Tensor, _ctx: &ExecCtx<'_>) -> Tier {
        Tier::Fast
    }
    fn on_capacity_pressure(&mut self, tier: Tier, _needed: u64, ctx: &mut ExecCtx<'_>) -> bool {
        self.pressure_calls += 1;
        if tier != Tier::Fast {
            return false;
        }
        // Demote the largest fast-resident tensor synchronously.
        let victim = ctx
            .graph()
            .tensors()
            .iter()
            .map(|t| t.id)
            .filter(|&t| ctx.is_live(t) && ctx.tensor_bytes_in(t, Tier::Fast) > 0)
            .max_by_key(|&t| ctx.tensor_bytes_in(t, Tier::Fast));
        match victim {
            Some(v) => match ctx.migrate_tensor_urgent(v, Tier::Slow) {
                Ok(Some(ready)) => {
                    ctx.stall_until(ready);
                    true
                }
                _ => false,
            },
            None => false,
        }
    }
}

#[test]
fn capacity_pressure_hook_lets_allocations_succeed_in_fast() {
    let g = chain(6, 64 << 10);
    // Fast holds about three activations.
    let mem = MemorySystem::new(
        HmConfig::testing().with_fast_capacity(220 << 10).with_slow_capacity(1 << 24),
    );
    let mut exec = Executor::new(&g, mem);
    let mut p = PressureValve { pressure_calls: 0 };
    let r = exec.run(&mut p, 2).unwrap();
    assert!(p.pressure_calls > 0, "pressure hook never fired");
    assert!(r.steps[1].demoted_bytes > 0, "valve should demote victims");
}

/// Assigns pools by tensor kind and verifies pages never mix kinds.
struct KindPools;

impl MemoryManager for KindPools {
    fn name(&self) -> &str {
        "kind-pools"
    }
    fn pool_for(&mut self, tensor: &Tensor, _ctx: &ExecCtx<'_>) -> PoolSpec {
        PoolSpec::packed(match tensor.kind {
            TensorKind::Weight | TensorKind::Input | TensorKind::OptimizerState => 1,
            TensorKind::Activation => 2,
            _ => 3,
        })
    }
    fn tier_for(&mut self, _t: &Tensor, _ctx: &ExecCtx<'_>) -> Tier {
        Tier::Slow
    }
}

#[test]
fn pool_assignment_controls_page_sharing() {
    let g = chain(3, 3000); // sub-page activations to force packing
    let mem = MemorySystem::new(HmConfig::testing().with_slow_capacity(1 << 24));
    let mut exec = Executor::new(&g, mem);
    let mut p = KindPools;
    exec.train_begin(&mut p).unwrap();
    // Weights and input are preallocated into pool 1: they may share pages
    // with each other but never with activations (pool 2).
    let weight_pages: Vec<_> = g
        .tensors()
        .iter()
        .filter(|t| t.preallocated())
        .filter_map(|t| exec.ctx().placement(t.id).map(|a| a.pages))
        .collect();
    exec.run_step(&mut p).unwrap();
    // During execution activations were placed in a different pool; their
    // pages are disjoint from every preallocated page.
    for t in g.tensors().iter().filter(|t| t.kind == TensorKind::Activation) {
        if let Some(a) = exec.ctx().placement(t.id) {
            for wp in &weight_pages {
                assert!(!a.pages.overlaps(wp), "activation {} shares a page with weights", t.name);
            }
        }
    }
}

#[test]
fn executor_reports_are_additive() {
    let g = chain(5, 32 << 10);
    let mem = MemorySystem::new(HmConfig::testing().with_slow_capacity(1 << 24));
    let mut exec = Executor::new(&g, mem);
    let mut p = SingleTier::slow();
    let r = exec.run(&mut p, 3).unwrap();
    for s in &r.steps {
        let b = &s.breakdown;
        // duration covers at least compute + memory + stall (alloc costs are free).
        assert!(
            s.duration_ns >= b.compute_ns + b.memory_ns + b.stall_ns,
            "step {} duration {} < parts {}",
            s.step,
            s.duration_ns,
            b.compute_ns + b.memory_ns + b.stall_ns
        );
        assert_eq!(s.duration_ns, b.compute_ns + b.memory_ns + b.stall_ns + b.recompute_ns);
    }
}

#[test]
fn graph_helpers_agree_with_execution() {
    let g = chain(4, 16 << 10);
    // Peak concurrent usage from the allocator must not exceed the
    // layer-granular static peak.
    let mem = MemorySystem::new(HmConfig::testing().with_slow_capacity(1 << 24));
    let mut exec = Executor::new(&g, mem);
    let mut p = SingleTier::slow();
    exec.run(&mut p, 1).unwrap();
    let runtime_peak = exec.ctx().allocator().peak_live_bytes();
    let static_peak = g.peak_live_bytes();
    assert!(
        runtime_peak <= static_peak + 4096 * g.num_tensors() as u64,
        "runtime peak {runtime_peak} vs static {static_peak}"
    );
}
