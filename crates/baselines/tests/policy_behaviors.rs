//! Behavioural contracts of each baseline, checked against the mechanisms
//! the paper attributes to them.

use sentinel_baselines::{run_baseline, Baseline, SwapAdvisor, Vdnn};
use sentinel_dnn::Executor;
use sentinel_mem::{HmConfig, MemorySystem, Tier};
use sentinel_models::{ModelSpec, ModelZoo};

fn cnn() -> sentinel_dnn::Graph {
    ModelZoo::build(&ModelSpec::resnet(32, 8).with_scale(4)).unwrap()
}

fn constrained(g: &sentinel_dnn::Graph, fraction: u64) -> HmConfig {
    HmConfig::optane_like()
        .without_cache()
        .with_fast_capacity(g.peak_live_bytes() / fraction)
}

#[test]
fn first_touch_is_order_dependent() {
    // First-touch fills fast memory in allocation order: early tensors land
    // fast, late ones slow. Verify weights (allocated first) are fast.
    let g = cnn();
    let cfg = constrained(&g, 5);
    let mut policy = Baseline::FirstTouch.make(&g, &cfg).unwrap();
    let mut exec = Executor::new(&g, MemorySystem::new(cfg));
    exec.train_begin(policy.as_mut()).unwrap();
    let first_weight = g.preallocated().next().unwrap();
    assert!(exec.ctx().tensor_bytes_in(first_weight.id, Tier::Fast) > 0);
}

#[test]
fn memory_mode_touches_no_fast_pages_directly() {
    // In Memory Mode all pages are mapped to PMM; DRAM acts only as a cache.
    let g = cnn();
    let cfg = constrained(&g, 5);
    let mut policy = Baseline::MemoryModeCache.make(&g, &cfg).unwrap();
    let mut exec = Executor::new(&g, MemorySystem::new(cfg));
    exec.run_step(policy.as_mut()).unwrap();
    assert_eq!(exec.ctx().mem().used_pages(Tier::Fast), 0);
    assert!(exec.ctx().mem().memory_mode_stats().unwrap().hits > 0);
}

#[test]
fn ial_promotes_only_on_repeated_touch() {
    // A single access does not promote; IAL needs the activity signal.
    let g = cnn();
    let cfg = constrained(&g, 5);
    let r = run_baseline(Baseline::Ial, &g, &cfg, 3).unwrap().unwrap();
    // It migrates, but far less than everything-on-every-touch would.
    let step = r.steps.last().unwrap();
    assert!(step.promoted_bytes > 0);
    assert!(step.promoted_bytes < 3 * g.peak_live_bytes());
}

#[test]
fn autotm_is_deterministic_and_static() {
    let g = cnn();
    let cfg = constrained(&g, 5);
    let a = run_baseline(Baseline::AutoTm, &g, &cfg, 3).unwrap().unwrap();
    let b = run_baseline(Baseline::AutoTm, &g, &cfg, 3).unwrap().unwrap();
    assert_eq!(a.steps, b.steps, "static plan must be deterministic");
    // Steady-state steps repeat exactly: the plan never adapts.
    assert_eq!(a.steps[1].duration_ns, a.steps[2].duration_ns);
}

#[test]
fn um_migration_is_fully_exposed() {
    let g = cnn();
    let cfg = HmConfig::gpu_like()
        .without_cache()
        .with_fast_capacity(g.peak_live_bytes() / 3);
    let r = run_baseline(Baseline::UnifiedMemory, &g, &cfg, 3).unwrap().unwrap();
    let s = r.steps.last().unwrap();
    // Essentially all migration time shows up as stall: UM never overlaps.
    let transfer_ns = (s.promoted_bytes + s.demoted_bytes) as f64 / 12.0;
    assert!(
        s.breakdown.stall_ns as f64 > 0.8 * transfer_ns,
        "UM stall {} should cover transfers {}",
        s.breakdown.stall_ns,
        transfer_ns
    );
}

#[test]
fn vdnn_manages_only_conv_inputs() {
    let g = cnn();
    let cfg = HmConfig::gpu_like()
        .without_cache()
        .with_fast_capacity(g.peak_live_bytes() * 3 / 4);
    let mut p = Vdnn::for_graph(&g).unwrap();
    let mut exec = Executor::new(&g, MemorySystem::new(cfg));
    let r = exec.run(&mut p, 3).unwrap();
    // It offloads (demotes) during forward and prefetches back.
    let s = r.steps.last().unwrap();
    assert!(s.demoted_bytes > 0);
    assert!(s.promoted_bytes > 0);
}

#[test]
fn swapadvisor_plan_scales_with_pressure() {
    let g = cnn();
    let loose = SwapAdvisor::plan_for(&g, g.peak_live_bytes() * 4, 12.0);
    let tight = SwapAdvisor::plan_for(&g, g.peak_live_bytes() / 8, 12.0);
    assert!(tight.swapped_count() >= loose.swapped_count());
}

#[test]
fn capuchin_recompute_appears_only_under_bandwidth_starvation() {
    let g = cnn();
    let mut roomy = HmConfig::gpu_like().without_cache().with_fast_capacity(g.peak_live_bytes() / 2);
    let normal = run_baseline(Baseline::Capuchin, &g, &roomy, 3).unwrap().unwrap();
    roomy.promote_bw_bytes_per_ns = 0.02;
    roomy.demote_bw_bytes_per_ns = 0.02;
    let starved = run_baseline(Baseline::Capuchin, &g, &roomy, 3).unwrap().unwrap();
    assert!(
        starved.steady_breakdown().recompute_ns >= normal.steady_breakdown().recompute_ns,
        "starved {} vs normal {}",
        starved.steady_breakdown().recompute_ns,
        normal.steady_breakdown().recompute_ns
    );
}

#[test]
fn baseline_names_are_unique() {
    let names: Vec<&str> = Baseline::all().iter().map(|b| b.name()).collect();
    let mut dedup = names.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len());
}
