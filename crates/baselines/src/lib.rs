//! # sentinel-baselines — the paper's comparison systems
//!
//! Faithful mechanism-level implementations of every system Sentinel is
//! evaluated against, each as a [`sentinel_dnn::MemoryManager`] over the
//! same simulated heterogeneous memory — so every comparison isolates the
//! *policy*:
//!
//! | Baseline | Mechanism |
//! |---|---|
//! | [`FirstTouchNuma`] | fast until full, then slow; no migration |
//! | [`MemoryMode`] | DRAM as a hardware direct-mapped page cache over PMM |
//! | [`Ial`] | FIFO active list; promote on second touch, synchronous copies |
//! | [`AutoTm`] | static-profile greedy-ILP placement; inbound moves exposed |
//! | [`UnifiedMemory`] | on-demand faulting with LRU eviction |
//! | [`Vdnn`] | offload/prefetch of convolution inputs only |
//! | [`SwapAdvisor`] | seeded genetic algorithm over swap plans |
//! | [`Capuchin`] | dynamic-profiled swap + recomputation |
//!
//! [`Baseline`] + [`run_baseline`] provide a uniform harness, and
//! [`PolicyTraits`] encodes the paper's qualitative Table I.

mod autotm;
mod capuchin;
mod common;
mod harness;
mod ial;
mod memory_mode;
mod numa;
mod swapadvisor;
mod um;
mod vdnn;

pub use autotm::AutoTm;
pub use capuchin::Capuchin;
pub use common::{conv_input_activations, has_conv, StaticProfile};
pub use harness::{run_baseline, Baseline, PolicyTraits};
pub use ial::Ial;
pub use memory_mode::MemoryMode;
pub use numa::FirstTouchNuma;
pub use swapadvisor::SwapAdvisor;
pub use um::UnifiedMemory;
pub use vdnn::Vdnn;
