//! Capuchin ([9]): dynamic-profiled swap + recomputation.
//!
//! Capuchin observes the access pattern during the first training step, then
//! for each long-lived tensor with a forward→backward gap decides between
//! *swapping* (evict after forward use, prefetch before backward use) and
//! *recomputing* (free immediately and re-run the producing operator when
//! the backward pass needs it). Swaps overlap with compute; when the
//! transfer cannot be hidden in the gap, Capuchin prefers recomputation —
//! whose cost (≈11% of step time in the paper's Figure 13) Sentinel avoids
//! entirely.

use crate::common::{ensure_resident_sync, StaticProfile};
use sentinel_dnn::{
    ExecCtx, Graph, MemoryManager, PoolSpec, Tensor, TensorId,
};
use sentinel_mem::{pages_for_bytes, AccessKind, Ns, Tier};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    Keep,
    Swap,
    Recompute,
}

/// The Capuchin baseline policy.
#[derive(Debug)]
pub struct Capuchin {
    decisions: Vec<Decision>,
    profile: Option<StaticProfile>,
    /// Measured per-layer times from the first (profiling) step.
    layer_times: Vec<Ns>,
    layer_mark: Ns,
    planned: bool,
    current_layer: usize,
}

impl Capuchin {
    /// A new Capuchin policy.
    #[must_use]
    pub fn new() -> Self {
        Capuchin {
            decisions: Vec::new(),
            profile: None,
            layer_times: Vec::new(),
            layer_mark: 0,
            planned: false,
            current_layer: 0,
        }
    }

    fn plan(&mut self, graph: &Graph, ctx: &ExecCtx<'_>) {
        let profile = self.profile.as_ref().expect("profiled before planning");
        let bw = ctx.mem().config().promote_bw_bytes_per_ns;
        let throughput = ctx.mem().config().compute_flops_per_ns;
        let mut decisions = vec![Decision::Keep; graph.num_tensors()];
        for t in graph.tensors() {
            if t.preallocated() || t.is_short_lived() || t.bytes < 4096 {
                continue;
            }
            let layers = &profile.ref_layers[t.id.index()];
            let (Some(&first), Some(&last)) = (layers.first(), layers.last()) else { continue };
            if last <= first + 2 {
                continue; // no useful gap
            }
            // The first (observation) step runs mostly from slow memory, so
            // measured layer times overstate steady-state gaps; apply a
            // conservative haircut before comparing with the transfer time.
            let gap_time: Ns = self.layer_times[first + 1..last].iter().sum::<Ns>() / 4;
            let transfer = (2.0 * t.bytes as f64 / bw) as Ns;
            let recompute = (profile.producer_flops(graph, t.id) as f64 / throughput) as Ns;
            decisions[t.id.index()] = if transfer <= gap_time {
                Decision::Swap
            } else if recompute < transfer {
                Decision::Recompute
            } else {
                Decision::Swap
            };
        }
        self.decisions = decisions;
        self.planned = true;
    }
}

impl Default for Capuchin {
    fn default() -> Self {
        Capuchin::new()
    }
}

impl MemoryManager for Capuchin {
    fn name(&self) -> &str {
        "capuchin"
    }

    fn on_train_begin(&mut self, ctx: &mut ExecCtx<'_>) {
        self.profile = Some(StaticProfile::new(ctx.graph()));
        self.decisions = vec![Decision::Keep; ctx.graph().num_tensors()];
    }

    fn tier_for(&mut self, tensor: &Tensor, ctx: &ExecCtx<'_>) -> Tier {
        let pages = pages_for_bytes(tensor.bytes, ctx.mem().page_size());
        if pages <= ctx.mem().free_pages(Tier::Fast) {
            Tier::Fast
        } else {
            Tier::Slow
        }
    }

    fn before_layer(&mut self, layer: usize, ctx: &mut ExecCtx<'_>) {
        self.layer_mark = ctx.now();
        self.current_layer = layer;
        if !self.planned {
            return;
        }
        // Prefetch swapped tensors a few layers ahead of their use, sized so
        // the PCIe channel can keep up (Capuchin schedules swap-ins at
        // measured trigger points).
        let Some(profile) = self.profile.as_ref() else { return };
        let movers: Vec<TensorId> = (0..self.decisions.len())
            .filter(|&i| self.decisions[i] == Decision::Swap)
            .map(|i| TensorId(i as u32))
            .filter(|&t| ctx.is_live(t) && ctx.tensor_bytes_in(t, Tier::Slow) > 0)
            .filter(|&t| matches!(profile.next_use(t, layer), Some(n) if n <= layer + 4))
            .collect();
        for t in movers {
            let _ = ctx.migrate_tensor(t, Tier::Fast);
        }
    }

    fn after_layer(&mut self, layer: usize, ctx: &mut ExecCtx<'_>) {
        if !self.planned {
            // Profiling step: record layer times.
            self.layer_times.push(ctx.now() - self.layer_mark);
            return;
        }
        let Some(profile) = self.profile.as_ref() else { return };
        // Swap out / discard tensors that entered their gap.
        let mut to_swap = Vec::new();
        let mut to_drop = Vec::new();
        for (i, d) in self.decisions.iter().enumerate() {
            let t = TensorId(i as u32);
            if !ctx.is_live(t) {
                continue;
            }
            // Demote only tensors idle beyond the prefetch horizon, so a
            // swap-out is never immediately undone by the next swap-in.
            let in_gap = match profile.next_use(t, layer + 1) {
                None => false, // dead soon anyway
                Some(n) => n > layer + 5,
            };
            if !in_gap {
                continue;
            }
            match d {
                Decision::Swap if ctx.tensor_bytes_in(t, Tier::Fast) > 0 => to_swap.push(t),
                Decision::Recompute => to_drop.push(t),
                _ => {}
            }
        }
        for t in to_swap {
            let _ = ctx.migrate_tensor(t, Tier::Slow);
        }
        for t in to_drop {
            let _ = ctx.release(t);
        }
    }

    fn before_access(&mut self, tensor: TensorId, _kind: AccessKind, ctx: &mut ExecCtx<'_>) {
        if !self.planned {
            return;
        }
        match self.decisions[tensor.index()] {
            Decision::Recompute if !ctx.is_live(tensor) => {
                // Re-materialize: allocate and charge the producer's FLOPs.
                let flops = self
                    .profile
                    .as_ref()
                    .map(|p| p.producer_flops(ctx.graph(), tensor))
                    .unwrap_or(0);
                let _ = ctx.allocate_with(tensor, PoolSpec::default_packed(), Tier::Fast)
                    .or_else(|_| ctx.allocate_with(tensor, PoolSpec::default_packed(), Tier::Slow));
                ctx.charge_recompute(flops);
            }
            _ if ctx.is_live(tensor) && ctx.tensor_bytes_in(tensor, Tier::Slow) > 0 => {
                // Late swap-in or unplanned resident: demand-fault it in.
                if let Some(profile) = self.profile.as_ref() {
                    ensure_resident_sync(ctx, tensor, profile, self.current_layer);
                }
            }
            _ => {}
        }
    }

    fn on_step_end(&mut self, ctx: &mut ExecCtx<'_>) {
        if !self.planned {
            let graph = ctx.graph();
            self.plan(graph, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_dnn::{Executor, SingleTier};
    use sentinel_mem::{HmConfig, MemorySystem};
    use sentinel_models::{ModelSpec, ModelZoo};

    fn graph() -> Graph {
        ModelZoo::build(&ModelSpec::resnet(32, 8).with_scale(4)).unwrap()
    }

    fn cfg(g: &Graph) -> HmConfig {
        HmConfig::gpu_like().without_cache().with_fast_capacity(g.peak_live_bytes() / 4)
    }

    #[test]
    fn capuchin_plans_after_first_step() {
        let g = graph();
        let mut exec = Executor::new(&g, MemorySystem::new(cfg(&g)));
        let mut p = Capuchin::new();
        exec.run_step(&mut p).unwrap();
        assert!(p.planned);
        let swaps = p.decisions.iter().filter(|&&d| d == Decision::Swap).count();
        assert!(swaps > 0, "expected some swap decisions");
    }

    #[test]
    fn capuchin_runs_and_beats_slow_only() {
        let g = graph();
        let c = cfg(&g);
        let cap =
            Executor::new(&g, MemorySystem::new(c.clone())).run(&mut Capuchin::new(), 4).unwrap();
        let slow =
            Executor::new(&g, MemorySystem::new(c)).run(&mut SingleTier::slow(), 4).unwrap();
        assert!(cap.steady_step_ns() < slow.steady_step_ns());
    }

    #[test]
    fn recompute_decisions_can_occur_under_pressure() {
        let g = graph();
        // Starve the transfer bandwidth so swapping cannot hide in gaps.
        let mut c = cfg(&g);
        c.promote_bw_bytes_per_ns = 0.01;
        c.demote_bw_bytes_per_ns = 0.01;
        let mut exec = Executor::new(&g, MemorySystem::new(c));
        let mut p = Capuchin::new();
        exec.run_step(&mut p).unwrap();
        let recomputes = p.decisions.iter().filter(|&&d| d == Decision::Recompute).count();
        assert!(recomputes > 0, "starved bandwidth should force recomputation");
        // And the recompute cost shows up in the breakdown.
        let r = exec.run_step(&mut p).unwrap();
        assert!(r.breakdown.recompute_ns > 0);
    }
}
