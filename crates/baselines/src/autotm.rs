//! AutoTM ([7]): static-profile, ILP-planned tensor placement.
//!
//! AutoTM profiles operator times at compile time and solves an ILP that
//! assigns each tensor a (possibly windowed) residence in fast memory. We
//! approximate the ILP with the classic greedy relaxation: tensors are
//! ranked by static access density (references per byte — *reference*
//! counts, since static profiling cannot see the cache hierarchy) and
//! admitted into fast memory while every layer of their live span has
//! budget. Planned movements execute at layer boundaries; inbound moves are
//! synchronous — the paper's stated weakness: "all tensor movements in
//! AutoTM between fast and slow memories are exposed to the critical path".

use crate::common::{ensure_resident_sync, StaticProfile};
use sentinel_dnn::{ExecCtx, MemoryManager, Tensor, TensorId};
use sentinel_mem::{pages_for_bytes, AccessKind, Ns, Tier};

/// Fraction of fast memory the planner budgets (headroom for fragmentation).
const PLAN_BUDGET: f64 = 0.9;
/// A planned-fast tensor idle for more than this many layers is moved out.
const IDLE_LAYERS: usize = 2;

/// The AutoTM baseline policy.
#[derive(Debug, Default)]
pub struct AutoTm {
    profile: Option<StaticProfile>,
    /// Whether the plan assigns each tensor to fast memory.
    assigned_fast: Vec<bool>,
    /// layer → planned-fast tensors referenced in that layer.
    by_layer: Vec<Vec<TensorId>>,
    current_layer: usize,
}

impl AutoTm {
    /// A new AutoTM policy.
    #[must_use]
    pub fn new() -> Self {
        AutoTm::default()
    }

    fn plan(&mut self, ctx: &ExecCtx<'_>) {
        let graph = ctx.graph();
        let profile = StaticProfile::new(graph);
        let num_layers = graph.num_layers();
        let budget = (ctx.mem().config().fast.capacity_bytes as f64 * PLAN_BUDGET) as u64;

        // Greedy knapsack by reference density.
        let mut order: Vec<TensorId> = graph.tensors().iter().map(|t| t.id).collect();
        order.sort_by(|&a, &b| {
            let da = profile.ref_counts[a.index()] as f64 / graph.tensor(a).bytes as f64;
            let db = profile.ref_counts[b.index()] as f64 / graph.tensor(b).bytes as f64;
            db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut per_layer_bytes = vec![0u64; num_layers];
        let mut assigned = vec![false; graph.num_tensors()];
        for t in order {
            let layers = &profile.ref_layers[t.index()];
            if layers.is_empty() {
                continue;
            }
            let bytes = graph.tensor(t).bytes;
            let (first, last) = (layers[0], *layers.last().expect("non-empty"));
            if (first..=last).all(|l| per_layer_bytes[l] + bytes <= budget) {
                for l in first..=last {
                    per_layer_bytes[l] += bytes;
                }
                assigned[t.index()] = true;
            }
        }

        let mut by_layer = vec![Vec::new(); num_layers];
        for (i, &is_fast) in assigned.iter().enumerate() {
            if is_fast {
                let t = TensorId(i as u32);
                for &l in &profile.ref_layers[i] {
                    by_layer[l].push(t);
                }
            }
        }
        self.assigned_fast = assigned;
        self.by_layer = by_layer;
        self.profile = Some(profile);
    }
}

impl MemoryManager for AutoTm {
    fn name(&self) -> &str {
        "autotm"
    }

    fn on_train_begin(&mut self, ctx: &mut ExecCtx<'_>) {
        self.plan(ctx);
    }

    fn tier_for(&mut self, tensor: &Tensor, ctx: &ExecCtx<'_>) -> Tier {
        if !self.assigned_fast[tensor.id.index()] {
            return Tier::Slow;
        }
        let pages = pages_for_bytes(tensor.bytes, ctx.mem().page_size());
        if pages <= ctx.mem().free_pages(Tier::Fast) {
            Tier::Fast
        } else {
            Tier::Slow
        }
    }

    fn before_layer(&mut self, layer: usize, ctx: &mut ExecCtx<'_>) {
        self.current_layer = layer;
        // Planned inbound movements execute at the layer boundary and are
        // synchronous — the paper's stated AutoTM weakness ("all tensor
        // movements in AutoTM ... are exposed to the critical path").
        let movers: Vec<TensorId> = self.by_layer[layer]
            .iter()
            .copied()
            .filter(|&t| ctx.is_live(t) && ctx.tensor_bytes_in(t, Tier::Slow) > 0)
            .collect();
        let mut latest: Option<Ns> = None;
        for t in movers {
            if let Ok(Some(ready)) = ctx.migrate_tensor(t, Tier::Fast) {
                latest = Some(latest.map_or(ready, |l: Ns| l.max(ready)));
            }
        }
        if let Some(ready) = latest {
            ctx.stall_until(ready);
        }
    }

    fn before_access(&mut self, tensor: TensorId, _kind: AccessKind, ctx: &mut ExecCtx<'_>) {
        // On the GPU platform even plan-slow tensors must be faulted into
        // device memory before the kernel touches them.
        if ctx.mem().config().slow_directly_accessible {
            return;
        }
        if ctx.is_live(tensor) && ctx.tensor_bytes_in(tensor, Tier::Slow) > 0 {
            if let Some(profile) = self.profile.as_ref() {
                ensure_resident_sync(ctx, tensor, profile, self.current_layer);
            }
        }
    }

    fn after_layer(&mut self, layer: usize, ctx: &mut ExecCtx<'_>) {
        let Some(profile) = self.profile.as_ref() else { return };
        let idle: Vec<TensorId> = self.by_layer[layer]
            .iter()
            .copied()
            .filter(|&t| ctx.is_live(t) && ctx.tensor_bytes_in(t, Tier::Fast) > 0)
            .filter(|&t| match profile.next_use(t, layer + 1) {
                None => true,
                Some(n) => n > layer + IDLE_LAYERS,
            })
            .collect();
        for t in idle {
            let _ = ctx.migrate_tensor(t, Tier::Slow); // outbound is asynchronous
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_dnn::{Executor, SingleTier};
    use sentinel_mem::{HmConfig, MemorySystem};
    use sentinel_models::{ModelSpec, ModelZoo};

    fn graph() -> sentinel_dnn::Graph {
        ModelZoo::build(&ModelSpec::resnet(32, 8).with_scale(4)).unwrap()
    }

    fn cfg(g: &sentinel_dnn::Graph) -> HmConfig {
        HmConfig::optane_like().without_cache().with_fast_capacity(g.peak_live_bytes() / 5)
    }

    #[test]
    fn autotm_plans_within_budget() {
        let g = graph();
        let mem = MemorySystem::new(cfg(&g));
        let mut exec = Executor::new(&g, mem);
        let mut p = AutoTm::new();
        exec.train_begin(&mut p).unwrap();
        let assigned: usize = p.assigned_fast.iter().filter(|&&b| b).count();
        assert!(assigned > 0, "plan should admit some tensors");
        assert!(assigned < g.num_tensors(), "plan cannot admit everything at 20% fast");
    }

    #[test]
    fn autotm_beats_slow_only() {
        let g = graph();
        let c = cfg(&g);
        let autotm =
            Executor::new(&g, MemorySystem::new(c.clone())).run(&mut AutoTm::new(), 4).unwrap();
        let slow =
            Executor::new(&g, MemorySystem::new(c)).run(&mut SingleTier::slow(), 4).unwrap();
        assert!(autotm.steady_step_ns() < slow.steady_step_ns());
    }

    #[test]
    fn autotm_movements_stall_the_pipeline() {
        let g = graph();
        let mut exec = Executor::new(&g, MemorySystem::new(cfg(&g)));
        let r = exec.run(&mut AutoTm::new(), 4).unwrap();
        assert!(r.steps.last().unwrap().breakdown.stall_ns > 0);
    }
}
