//! SwapAdvisor ([8]): genetic-algorithm search over swap plans.
//!
//! SwapAdvisor explores which tensors to swap between device and host with a
//! genetic algorithm over a simulator-based fitness function. We reproduce
//! the mechanism at tensor granularity: the genome selects a subset of
//! long-lived tensors to swap out during their forward→backward gap; the
//! fitness estimates step time from (a) fast-memory overflow penalties and
//! (b) transfer exposure versus the time available in the gap. The search is
//! deterministic (seeded). As in the paper, the plan optimizes training time
//! rather than memory minimization, so it swaps less aggressively than
//! Sentinel.

use crate::common::{ensure_resident_sync, StaticProfile};
use sentinel_util::{Pool, Rng};
use sentinel_dnn::{ExecCtx, Graph, MemoryManager, Tensor, TensorId};
use sentinel_mem::{pages_for_bytes, AccessKind, Tier};

const POPULATION: usize = 16;
const GENERATIONS: usize = 20;
const MUTATION: f64 = 0.05;
const SEED: u64 = 42;

/// A candidate tensor the GA may decide to swap.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    t: TensorId,
    bytes: u64,
    first: usize,
    last: usize,
}

/// The SwapAdvisor baseline policy.
#[derive(Debug)]
pub struct SwapAdvisor {
    candidates: Vec<Candidate>,
    /// Chosen plan: per candidate, swap or not.
    plan: Vec<bool>,
    swap: Vec<bool>,
    profile: Option<StaticProfile>,
    current_layer: usize,
}

impl SwapAdvisor {
    /// Build SwapAdvisor for `graph`, running the GA against `fast_bytes`
    /// of device memory and `bw` bytes/ns of transfer bandwidth. The GA
    /// fans candidate evaluation out on an environment-sized pool
    /// ([`Pool::from_env`]); see [`SwapAdvisor::plan_for_with_pool`] for
    /// the determinism contract.
    #[must_use]
    pub fn plan_for(graph: &Graph, fast_bytes: u64, bw: f64) -> Self {
        SwapAdvisor::plan_for_with_pool(graph, fast_bytes, bw, Pool::from_env())
    }

    /// [`SwapAdvisor::plan_for`] with an explicit worker pool for the GA's
    /// per-candidate evaluation and breeding. The search is seeded and each
    /// child is bred on an RNG stream forked off the main seed *before* the
    /// fan-out, so the chosen plan is identical at any worker count.
    #[must_use]
    pub fn plan_for_with_pool(graph: &Graph, fast_bytes: u64, bw: f64, pool: Pool) -> Self {
        let profile = StaticProfile::new(graph);
        let candidates: Vec<Candidate> = graph
            .tensors()
            .iter()
            .filter(|t| !t.is_short_lived() && !t.preallocated())
            .filter_map(|t| {
                let layers = &profile.ref_layers[t.id.index()];
                let (first, last) = (*layers.first()?, *layers.last()?);
                // Worth swapping only with a real gap and at least a page.
                (last > first + 2 && t.bytes >= 4096).then_some(Candidate {
                    t: t.id,
                    bytes: t.bytes,
                    first,
                    last,
                })
            })
            .collect();

        let plan = ga_search(graph, &candidates, fast_bytes, bw, pool);
        let mut swap = vec![false; graph.num_tensors()];
        for (c, &s) in candidates.iter().zip(&plan) {
            if s {
                swap[c.t.index()] = true;
            }
        }
        SwapAdvisor { candidates, plan, swap, profile: Some(profile), current_layer: 0 }
    }

    /// Number of tensors the plan swaps.
    #[must_use]
    pub fn swapped_count(&self) -> usize {
        self.plan.iter().filter(|&&s| s).count()
    }
}

/// Estimated cost of a genome (lower is better).
fn fitness(graph: &Graph, candidates: &[Candidate], genome: &[bool], fast_bytes: u64, bw: f64) -> f64 {
    let num_layers = graph.num_layers();
    // Fast-memory demand per layer if the plan is followed.
    let mut demand = vec![0f64; num_layers];
    for t in graph.tensors() {
        if let Some((first, last)) = t.layer_span() {
            for l in first..=last.min(num_layers - 1) {
                demand[l] += t.bytes as f64;
            }
        }
    }
    let mut transfer_exposure = 0f64;
    for (c, &s) in candidates.iter().zip(genome) {
        if !s {
            continue;
        }
        // Swapped out during the gap: free its bytes there.
        for l in (c.first + 1)..c.last {
            demand[l] -= c.bytes as f64;
        }
        // Transfer both ways; assume one layer of overlap each way.
        let per_layer_overlap = 2.0e6; // ns, coarse uniform estimate
        transfer_exposure += (2.0 * c.bytes as f64 / bw - 2.0 * per_layer_overlap).max(0.0);
    }
    // Overflow beyond device memory is charged at a slow-access premium.
    let overflow: f64 = demand.iter().map(|&d| (d - fast_bytes as f64).max(0.0)).sum();
    overflow * 0.5 + transfer_exposure
}

/// Seeded GA over swap plans. Both hot fan-outs run on `pool`: fitness is a
/// pure function of the genome, so per-candidate evaluation parallelizes
/// as-is, and each child of a generation is bred from an RNG stream forked
/// off the main seed serially *before* the fan-out — the stream a child
/// sees depends only on its index, never on worker interleaving, keeping
/// the search seed-deterministic at any worker count.
fn ga_search(
    graph: &Graph,
    candidates: &[Candidate],
    fast_bytes: u64,
    bw: f64,
    pool: Pool,
) -> Vec<bool> {
    let n = candidates.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = Rng::seed_from_u64(SEED);
    let mut population: Vec<Vec<bool>> =
        (0..POPULATION).map(|_| (0..n).map(|_| rng.gen_bool(0.5)).collect()).collect();

    let mut best = population[0].clone();
    let mut best_cost = fitness(graph, candidates, &best, fast_bytes, bw);
    for _ in 0..GENERATIONS {
        let costs: Vec<f64> = pool.par_map((0..POPULATION).collect(), |p| {
            fitness(graph, candidates, &population[p], fast_bytes, bw)
        });
        for (g, &c) in population.iter().zip(&costs) {
            if c < best_cost {
                best_cost = c;
                best = g.clone();
            }
        }
        // Tournament selection + uniform crossover + mutation, one forked
        // stream per child.
        let streams: Vec<Rng> = (0..POPULATION).map(|_| rng.fork()).collect();
        population = pool.par_map(streams, |mut rng| {
            let pick = |rng: &mut Rng| {
                let a = rng.gen_usize(0, POPULATION);
                let b = rng.gen_usize(0, POPULATION);
                if costs[a] <= costs[b] {
                    a
                } else {
                    b
                }
            };
            let (pa, pb) = (pick(&mut rng), pick(&mut rng));
            (0..n)
                .map(|i| {
                    let gene = if rng.gen_bool(0.5) { population[pa][i] } else { population[pb][i] };
                    if rng.gen_bool(MUTATION) {
                        !gene
                    } else {
                        gene
                    }
                })
                .collect()
        });
    }
    best
}

impl MemoryManager for SwapAdvisor {
    fn name(&self) -> &str {
        "swapadvisor"
    }

    fn tier_for(&mut self, tensor: &Tensor, ctx: &ExecCtx<'_>) -> Tier {
        let pages = pages_for_bytes(tensor.bytes, ctx.mem().page_size());
        if pages <= ctx.mem().free_pages(Tier::Fast) {
            Tier::Fast
        } else {
            Tier::Slow
        }
    }

    fn before_layer(&mut self, layer: usize, ctx: &mut ExecCtx<'_>) {
        self.current_layer = layer;
        // Swap-in two layers ahead of the backward use.
        let Some(profile) = self.profile.as_ref() else { return };
        let movers: Vec<TensorId> = (0..self.swap.len())
            .filter(|&i| self.swap[i])
            .map(|i| TensorId(i as u32))
            .filter(|&t| ctx.is_live(t) && ctx.tensor_bytes_in(t, Tier::Slow) > 0)
            .filter(|&t| matches!(profile.next_use(t, layer), Some(n) if n <= layer + 2))
            .collect();
        for t in movers {
            let _ = ctx.migrate_tensor(t, Tier::Fast);
        }
    }

    fn after_layer(&mut self, layer: usize, ctx: &mut ExecCtx<'_>) {
        // Swap-out inside the gap — but never within the swap-in horizon,
        // which would undo the incoming transfer.
        let profile = self.profile.as_ref().expect("profiled at construction");
        let victims: Vec<TensorId> = self
            .candidates
            .iter()
            .zip(&self.plan)
            .filter(|&(_, &s)| s)
            .map(|(c, _)| c)
            .filter(|c| layer >= c.first && layer + 1 < c.last)
            .map(|c| c.t)
            .filter(|&t| matches!(profile.next_use(t, layer + 1), Some(n) if n > layer + 3) || profile.next_use(t, layer + 1).is_none())
            .filter(|&t| ctx.is_live(t) && ctx.tensor_bytes_in(t, Tier::Fast) > 0)
            .collect();
        for t in victims {
            let _ = ctx.migrate_tensor(t, Tier::Slow);
        }
    }

    fn before_access(&mut self, tensor: TensorId, _kind: AccessKind, ctx: &mut ExecCtx<'_>) {
        if !ctx.is_live(tensor) || ctx.tensor_bytes_in(tensor, Tier::Slow) == 0 {
            return;
        }
        if self.swap[tensor.index()] {
            // Wait for a late planned swap-in before falling back to a
            // demand fault.
            if let Some(pages) = ctx.placement(tensor).map(|a| a.pages) {
                if let Some(ready) = ctx.mem().range_ready_at(pages) {
                    ctx.stall_until(ready);
                }
            }
        }
        if ctx.tensor_bytes_in(tensor, Tier::Slow) > 0 {
            if let Some(profile) = self.profile.as_ref() {
                ensure_resident_sync(ctx, tensor, profile, self.current_layer);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_dnn::{Executor, SingleTier};
    use sentinel_mem::{HmConfig, MemorySystem};
    use sentinel_models::{ModelSpec, ModelZoo};

    fn graph() -> Graph {
        ModelZoo::build(&ModelSpec::resnet(32, 8).with_scale(4)).unwrap()
    }

    #[test]
    fn ga_is_deterministic() {
        let g = graph();
        let a = SwapAdvisor::plan_for(&g, g.peak_live_bytes() / 5, 12.0);
        let b = SwapAdvisor::plan_for(&g, g.peak_live_bytes() / 5, 12.0);
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn ga_plan_is_independent_of_worker_count() {
        let g = graph();
        let fast = g.peak_live_bytes() / 5;
        let serial = SwapAdvisor::plan_for_with_pool(&g, fast, 12.0, sentinel_util::Pool::new(1));
        for workers in [2, 4, 7] {
            let parallel =
                SwapAdvisor::plan_for_with_pool(&g, fast, 12.0, sentinel_util::Pool::new(workers));
            assert_eq!(serial.plan, parallel.plan, "{workers} workers changed the GA plan");
        }
    }

    #[test]
    fn tight_memory_swaps_more() {
        let g = graph();
        let tight = SwapAdvisor::plan_for(&g, g.peak_live_bytes() / 10, 12.0);
        let roomy = SwapAdvisor::plan_for(&g, g.peak_live_bytes() * 2, 12.0);
        assert!(tight.swapped_count() >= roomy.swapped_count());
        assert!(tight.swapped_count() > 0);
    }

    #[test]
    fn swapadvisor_beats_slow_only() {
        let g = graph();
        let cfg = HmConfig::gpu_like().without_cache().with_fast_capacity(g.peak_live_bytes() / 4);
        let mut p = SwapAdvisor::plan_for(&g, cfg.fast.capacity_bytes, cfg.promote_bw_bytes_per_ns);
        let sa = Executor::new(&g, MemorySystem::new(cfg.clone())).run(&mut p, 4).unwrap();
        let slow =
            Executor::new(&g, MemorySystem::new(cfg)).run(&mut SingleTier::slow(), 4).unwrap();
        assert!(sa.steady_step_ns() < slow.steady_step_ns());
    }
}
