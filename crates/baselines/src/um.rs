//! UM — CUDA Unified Memory ([37]): on-demand page migration.
//!
//! No profiling, no planning: a tensor is faulted into fast (device) memory
//! the moment it is touched there, evicting least-recently-used residents
//! when full. Every fault and copy sits on the critical path, which is why
//! the paper measures Sentinel 1.1–7.8× faster.

use sentinel_dnn::{ExecCtx, MemoryManager, Tensor, TensorId};
use sentinel_mem::{pages_for_bytes, AccessKind, Tier};

/// The Unified-Memory baseline policy.
#[derive(Debug, Default)]
pub struct UnifiedMemory {
    /// Per-tensor last-touch tick for LRU eviction.
    last_touch: Vec<u64>,
    tick: u64,
}

impl UnifiedMemory {
    /// A new UM policy.
    #[must_use]
    pub fn new() -> Self {
        UnifiedMemory::default()
    }

    fn evict_lru(&mut self, exclude: TensorId, ctx: &mut ExecCtx<'_>) -> bool {
        let victim = ctx
            .graph()
            .tensors()
            .iter()
            .map(|t| t.id)
            .filter(|&t| t != exclude && ctx.is_live(t))
            .filter(|&t| ctx.tensor_bytes_in(t, Tier::Fast) > 0)
            .min_by_key(|&t| self.last_touch[t.index()]);
        let Some(victim) = victim else { return false };
        match ctx.migrate_tensor_urgent(victim, Tier::Slow) {
            Ok(Some(ready)) => {
                ctx.stall_until(ready);
                true
            }
            _ => false,
        }
    }
}

impl MemoryManager for UnifiedMemory {
    fn name(&self) -> &str {
        "um"
    }

    fn on_train_begin(&mut self, ctx: &mut ExecCtx<'_>) {
        self.last_touch = vec![0; ctx.graph().num_tensors()];
    }

    fn tier_for(&mut self, tensor: &Tensor, ctx: &ExecCtx<'_>) -> Tier {
        let pages = pages_for_bytes(tensor.bytes, ctx.mem().page_size());
        if pages <= ctx.mem().free_pages(Tier::Fast) {
            Tier::Fast
        } else {
            Tier::Slow
        }
    }

    fn before_access(&mut self, tensor: TensorId, _kind: AccessKind, ctx: &mut ExecCtx<'_>) {
        self.tick += 1;
        if tensor.index() < self.last_touch.len() {
            self.last_touch[tensor.index()] = self.tick;
        }
        if !ctx.is_live(tensor) || ctx.tensor_bytes_in(tensor, Tier::Slow) == 0 {
            return;
        }
        // GPU page fault: make room, then copy in — all synchronous.
        let page_size = ctx.mem().page_size();
        let needed = pages_for_bytes(ctx.tensor_bytes_in(tensor, Tier::Slow), page_size);
        let mut guard = 0;
        while ctx.mem().free_pages(Tier::Fast) < needed && guard < 100_000 {
            if !self.evict_lru(tensor, ctx) {
                return; // cannot make room; serve from slow
            }
            guard += 1;
        }
        let fault_cost = ctx.mem().config().fault_overhead_ns;
        if let Ok(Some(ready)) = ctx.migrate_tensor_urgent(tensor, Tier::Fast) {
            ctx.stall_until(ready + fault_cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_dnn::{Executor, SingleTier};
    use sentinel_mem::{HmConfig, MemorySystem};
    use sentinel_models::{ModelSpec, ModelZoo};

    fn graph() -> sentinel_dnn::Graph {
        ModelZoo::build(&ModelSpec::resnet(32, 8).with_scale(4)).unwrap()
    }

    fn cfg(g: &sentinel_dnn::Graph) -> HmConfig {
        HmConfig::gpu_like().without_cache().with_fast_capacity(g.peak_live_bytes() / 5)
    }

    #[test]
    fn um_faults_everything_to_fast() {
        let g = graph();
        let mut exec = Executor::new(&g, MemorySystem::new(cfg(&g)));
        let r = exec.run(&mut UnifiedMemory::new(), 3).unwrap();
        let last = r.steps.last().unwrap();
        assert!(last.migrated_bytes() > 0);
        assert!(last.breakdown.stall_ns > 0, "UM copies are synchronous");
    }

    #[test]
    fn um_beats_running_from_host_memory() {
        let g = graph();
        let c = cfg(&g);
        let um = Executor::new(&g, MemorySystem::new(c.clone()))
            .run(&mut UnifiedMemory::new(), 3)
            .unwrap();
        let slow = Executor::new(&g, MemorySystem::new(c)).run(&mut SingleTier::slow(), 3).unwrap();
        assert!(um.steady_step_ns() < slow.steady_step_ns());
    }
}
