//! Optane Memory Mode: DRAM as a hardware-managed cache over PMM.
//!
//! All application pages live in PMM; the fast tier is invisible to software
//! and serves as a direct-mapped page cache (see
//! [`sentinel_mem::MemoryModeCache`]). No runtime placement decisions exist
//! — which is the point of the baseline.

use sentinel_dnn::{ExecCtx, MemoryManager, Tensor};
use sentinel_mem::{MemoryModeSpec, Tier};

/// The Memory-Mode baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryMode;

impl MemoryMode {
    /// A new Memory-Mode policy.
    #[must_use]
    pub fn new() -> Self {
        MemoryMode
    }
}

impl MemoryManager for MemoryMode {
    fn name(&self) -> &str {
        "memory-mode"
    }

    fn on_train_begin(&mut self, ctx: &mut ExecCtx<'_>) {
        let spec = MemoryModeSpec::from_config(ctx.mem().config());
        ctx.mem_mut().enable_memory_mode(spec);
    }

    fn tier_for(&mut self, _tensor: &Tensor, _ctx: &ExecCtx<'_>) -> Tier {
        Tier::Slow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_dnn::{Executor, SingleTier};
    use sentinel_mem::{HmConfig, MemorySystem};
    use sentinel_models::{ModelSpec, ModelZoo};

    #[test]
    fn memory_mode_beats_slow_only_when_cache_is_big() {
        let g = ModelZoo::build(&ModelSpec::resnet(20, 4).with_scale(4)).unwrap();
        // DRAM cache larger than the working set: nearly everything hits.
        let cfg = HmConfig::optane_like().without_cache();
        let mm = Executor::new(&g, MemorySystem::new(cfg.clone()))
            .run(&mut MemoryMode::new(), 3)
            .unwrap();
        let slow = Executor::new(&g, MemorySystem::new(cfg))
            .run(&mut SingleTier::slow(), 3)
            .unwrap();
        assert!(mm.steady_step_ns() < slow.steady_step_ns());
    }

    #[test]
    fn small_cache_degrades_memory_mode() {
        let g = ModelZoo::build(&ModelSpec::resnet(32, 8).with_scale(4)).unwrap();
        let big = HmConfig::optane_like().without_cache();
        let small = big.clone().with_fast_capacity(g.peak_live_bytes() / 20);
        let fast_big = Executor::new(&g, MemorySystem::new(big))
            .run(&mut MemoryMode::new(), 3)
            .unwrap();
        let fast_small = Executor::new(&g, MemorySystem::new(small))
            .run(&mut MemoryMode::new(), 3)
            .unwrap();
        assert!(fast_small.steady_step_ns() > fast_big.steady_step_ns());
    }

    #[test]
    fn cache_stats_are_exposed() {
        let g = ModelZoo::build(&ModelSpec::resnet(20, 2).with_scale(8)).unwrap();
        let cfg = HmConfig::optane_like().without_cache();
        let mut exec = Executor::new(&g, MemorySystem::new(cfg));
        exec.run(&mut MemoryMode::new(), 2).unwrap();
        let stats = exec.ctx().mem().memory_mode_stats().unwrap();
        assert!(stats.hits + stats.misses > 0);
    }
}
