//! Shared helpers for baseline policies.

use sentinel_dnn::{Graph, OpRef, TensorId};

/// Static (graph-derived) statistics baselines plan with. Unlike Sentinel's
/// dynamic profile, these are *reference* counts — they ignore the cache
/// hierarchy, which is precisely the inaccuracy the paper attributes to
/// static-profiling systems.
#[derive(Debug, Clone)]
pub struct StaticProfile {
    /// tensor → number of op references (passes included).
    pub ref_counts: Vec<u64>,
    /// tensor → producing op (first writer), for recomputation costing.
    pub producer: Vec<Option<OpRef>>,
    /// tensor → sorted distinct layers referencing it.
    pub ref_layers: Vec<Vec<usize>>,
}

impl StaticProfile {
    /// Build from a graph.
    #[must_use]
    pub fn new(graph: &Graph) -> Self {
        let n = graph.num_tensors();
        let mut ref_counts = vec![0u64; n];
        let mut producer: Vec<Option<OpRef>> = vec![None; n];
        let mut ref_layers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (li, layer) in graph.layers().iter().enumerate() {
            for (oi, op) in layer.ops.iter().enumerate() {
                for o in op.reads.iter().chain(op.writes.iter()) {
                    ref_counts[o.tensor.index()] += u64::from(o.passes);
                    let layers = &mut ref_layers[o.tensor.index()];
                    if layers.last() != Some(&li) {
                        layers.push(li);
                    }
                }
                for o in &op.writes {
                    if producer[o.tensor.index()].is_none() {
                        producer[o.tensor.index()] = Some(OpRef { layer: li, op: oi });
                    }
                }
            }
        }
        StaticProfile { ref_counts, producer, ref_layers }
    }

    /// FLOPs of the op that produces `t` (for recomputation cost), 0 if none.
    #[must_use]
    pub fn producer_flops(&self, graph: &Graph, t: TensorId) -> u64 {
        self.producer[t.index()]
            .map(|at| graph.layers()[at.layer].ops[at.op].flops)
            .unwrap_or(0)
    }

    /// Next layer `>= layer` referencing `t` within this step, if any.
    #[must_use]
    pub fn next_use(&self, t: TensorId, layer: usize) -> Option<usize> {
        self.ref_layers[t.index()].iter().copied().find(|&l| l >= layer)
    }

    /// Last layer referencing `t`, if any.
    #[must_use]
    pub fn last_use(&self, t: TensorId) -> Option<usize> {
        self.ref_layers[t.index()].last().copied()
    }
}

/// Synchronously fault `t` into fast memory, evicting fast-resident tensors
/// with the farthest next use until it fits. Returns `false` if residency
/// could not be established (the access is then served from slow memory).
///
/// This is the demand-paging fallback every GPU-side baseline needs: a
/// tensor its plan did not cover must still reach device memory before the
/// kernel can run, and the copy is synchronous.
pub fn ensure_resident_sync(
    ctx: &mut sentinel_dnn::ExecCtx<'_>,
    t: TensorId,
    profile: &StaticProfile,
    current_layer: usize,
) -> bool {
    use sentinel_mem::{pages_for_bytes, Ns, Tier};
    if !ctx.is_live(t) {
        return false;
    }
    let page_size = ctx.mem().page_size();
    let needed = pages_for_bytes(ctx.tensor_bytes_in(t, Tier::Slow), page_size);
    if needed == 0 {
        return true;
    }
    if ctx.mem().free_pages(Tier::Fast) < needed {
        // Evict farthest-next-use residents until the tensor fits.
        let mut victims: Vec<(std::cmp::Reverse<usize>, TensorId, u64)> = ctx
            .graph()
            .tensors()
            .iter()
            .map(|v| v.id)
            .filter(|&v| v != t && ctx.is_live(v))
            .filter_map(|v| {
                let fast = ctx.tensor_bytes_in(v, Tier::Fast);
                (fast > 0).then(|| {
                    let next = profile.next_use(v, current_layer).unwrap_or(usize::MAX);
                    (std::cmp::Reverse(next), v, fast)
                })
            })
            .collect();
        victims.sort();
        let mut freed = 0u64;
        let mut latest: Option<Ns> = None;
        for (_, v, fast_bytes) in victims {
            if ctx.mem().free_pages(Tier::Fast) + freed >= needed {
                break;
            }
            if let Ok(Some(ready)) = ctx.migrate_tensor_urgent(v, Tier::Slow) {
                freed += pages_for_bytes(fast_bytes, page_size);
                latest = Some(latest.map_or(ready, |l: Ns| l.max(ready)));
            }
        }
        if let Some(ready) = latest {
            ctx.stall_until(ready);
        }
    }
    match ctx.migrate_tensor_urgent(t, Tier::Fast) {
        Ok(Some(ready)) => {
            ctx.stall_until(ready);
            true
        }
        Ok(None) => true,
        Err(_) => false,
    }
}

/// Inputs of convolution ops that are *activations* — the tensors vDNN
/// offloads.
#[must_use]
pub fn conv_input_activations(graph: &Graph) -> Vec<TensorId> {
    let mut out = Vec::new();
    for layer in graph.layers() {
        for op in &layer.ops {
            if !op.kind.is_conv() {
                continue;
            }
            for o in &op.reads {
                let t = graph.tensor(o.tensor);
                if !t.preallocated() && !t.is_short_lived() && !out.contains(&o.tensor) {
                    out.push(o.tensor);
                }
            }
        }
    }
    out
}

/// Whether the graph contains any convolution at all (vDNN's applicability).
#[must_use]
pub fn has_conv(graph: &Graph) -> bool {
    graph.layers().iter().flat_map(|l| &l.ops).any(|o| o.kind.is_conv())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_models::{ModelSpec, ModelZoo};

    #[test]
    fn static_profile_counts_references() {
        let g = ModelZoo::build(&ModelSpec::resnet(20, 2).with_scale(8)).unwrap();
        let p = StaticProfile::new(&g);
        assert!(p.ref_counts.iter().sum::<u64>() > 0);
        // Every runtime tensor has a producer.
        for t in g.tensors().iter().filter(|t| !t.preallocated()) {
            assert!(p.producer[t.id.index()].is_some(), "{}", t.name);
        }
    }

    #[test]
    fn conv_inputs_found_for_cnns_only() {
        let cnn = ModelZoo::build(&ModelSpec::resnet(20, 2).with_scale(8)).unwrap();
        assert!(has_conv(&cnn));
        assert!(!conv_input_activations(&cnn).is_empty());

        let rnn = ModelZoo::build(&ModelSpec::lstm(2).with_scale(8)).unwrap();
        assert!(!has_conv(&rnn));
        assert!(conv_input_activations(&rnn).is_empty());
    }

    #[test]
    fn next_and_last_use() {
        let g = ModelZoo::build(&ModelSpec::resnet(20, 2).with_scale(8)).unwrap();
        let p = StaticProfile::new(&g);
        let act = g.tensors().iter().find(|t| t.name == "s0b0/a1").unwrap();
        let first = p.ref_layers[act.id.index()][0];
        assert_eq!(p.next_use(act.id, 0), Some(first));
        assert!(p.last_use(act.id).unwrap() > first);
        assert_eq!(p.next_use(act.id, p.last_use(act.id).unwrap() + 1), None);
    }
}
