//! First-touch NUMA placement: the default Linux policy on the Optane box.
//!
//! DRAM and PMM are two NUMA nodes; pages land on the "local" (fast) node
//! until it fills, then spill to the far node. Nothing ever migrates.

use sentinel_dnn::{ExecCtx, MemoryManager, Tensor};
use sentinel_mem::{pages_for_bytes, Tier};

/// The first-touch NUMA baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstTouchNuma;

impl FirstTouchNuma {
    /// A new first-touch policy.
    #[must_use]
    pub fn new() -> Self {
        FirstTouchNuma
    }
}

impl MemoryManager for FirstTouchNuma {
    fn name(&self) -> &str {
        "first-touch"
    }

    fn tier_for(&mut self, tensor: &Tensor, ctx: &ExecCtx<'_>) -> Tier {
        let pages = pages_for_bytes(tensor.bytes, ctx.mem().page_size());
        if pages <= ctx.mem().free_pages(Tier::Fast) {
            Tier::Fast
        } else {
            Tier::Slow
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_dnn::Executor;
    use sentinel_mem::{HmConfig, MemorySystem};
    use sentinel_models::{ModelSpec, ModelZoo};

    #[test]
    fn spills_to_slow_when_fast_fills() {
        let g = ModelZoo::build(&ModelSpec::resnet(32, 8).with_scale(4)).unwrap();
        let cfg = HmConfig::optane_like()
            .without_cache()
            .with_fast_capacity(g.peak_live_bytes() / 5);
        let mut exec = Executor::new(&g, MemorySystem::new(cfg));
        let r = exec.run(&mut FirstTouchNuma::new(), 3).unwrap();
        let last = r.steps.last().unwrap();
        assert!(last.fast_accesses > 0);
        assert!(last.slow_accesses > 0);
        assert_eq!(last.migrated_bytes(), 0, "first-touch never migrates");
    }

    #[test]
    fn everything_fast_when_it_fits() {
        let g = ModelZoo::build(&ModelSpec::resnet(20, 2).with_scale(8)).unwrap();
        let cfg = HmConfig::optane_like().without_cache();
        let mut exec = Executor::new(&g, MemorySystem::new(cfg));
        let r = exec.run(&mut FirstTouchNuma::new(), 2).unwrap();
        assert_eq!(r.steps.last().unwrap().slow_accesses, 0);
    }
}
