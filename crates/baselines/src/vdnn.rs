//! vDNN ([6]): domain-knowledge offload of convolution-layer inputs.
//!
//! vDNN only manages the input tensors of convolution layers: after a
//! forward conv consumes its input, the input is offloaded to host memory;
//! it is prefetched back one layer before its backward use. The paper's
//! criticisms, both reproduced here: (a) it cannot handle models without
//! convolutions (LSTM, BERT), and (b) it ignores per-layer time differences,
//! so prefetches are frequently late and the copy is exposed.

use crate::common::{conv_input_activations, ensure_resident_sync, has_conv, StaticProfile};
use sentinel_dnn::{ExecCtx, Graph, MemoryManager, Tensor, TensorId};
use sentinel_mem::{pages_for_bytes, AccessKind, Tier};

/// The vDNN baseline policy.
#[derive(Debug)]
pub struct Vdnn {
    offload: Vec<bool>,
    profile: Option<StaticProfile>,
    current_layer: usize,
}

impl Vdnn {
    /// Build vDNN for `graph`; returns `None` for models without
    /// convolutions (the paper: "vDNN cannot work for LSTM and BERT").
    #[must_use]
    pub fn for_graph(graph: &Graph) -> Option<Self> {
        if !has_conv(graph) {
            return None;
        }
        let mut offload = vec![false; graph.num_tensors()];
        for t in conv_input_activations(graph) {
            offload[t.index()] = true;
        }
        Some(Vdnn { offload, profile: None, current_layer: 0 })
    }
}

impl MemoryManager for Vdnn {
    fn name(&self) -> &str {
        "vdnn"
    }

    fn on_train_begin(&mut self, ctx: &mut ExecCtx<'_>) {
        self.profile = Some(StaticProfile::new(ctx.graph()));
    }

    fn tier_for(&mut self, tensor: &Tensor, ctx: &ExecCtx<'_>) -> Tier {
        let pages = pages_for_bytes(tensor.bytes, ctx.mem().page_size());
        if pages <= ctx.mem().free_pages(Tier::Fast) {
            Tier::Fast
        } else {
            Tier::Slow
        }
    }

    fn before_layer(&mut self, layer: usize, ctx: &mut ExecCtx<'_>) {
        self.current_layer = layer;
        // Prefetch offloaded inputs used in the *next* layer (fixed one-layer
        // lookahead, no performance model).
        let Some(profile) = self.profile.as_ref() else { return };
        let candidates: Vec<TensorId> = (0..self.offload.len())
            .filter(|&i| self.offload[i])
            .map(|i| TensorId(i as u32))
            .filter(|&t| ctx.is_live(t) && ctx.tensor_bytes_in(t, Tier::Slow) > 0)
            .filter(|&t| profile.next_use(t, layer) == Some(layer + 1))
            .collect();
        for t in candidates {
            let _ = ctx.migrate_tensor(t, Tier::Fast); // asynchronous
        }
    }

    fn after_layer(&mut self, layer: usize, ctx: &mut ExecCtx<'_>) {
        // Offload conv inputs no longer needed by the next layer.
        let Some(profile) = self.profile.as_ref() else { return };
        let victims: Vec<TensorId> = (0..self.offload.len())
            .filter(|&i| self.offload[i])
            .map(|i| TensorId(i as u32))
            .filter(|&t| ctx.is_live(t) && ctx.tensor_bytes_in(t, Tier::Fast) > 0)
            .filter(|&t| match profile.next_use(t, layer + 1) {
                None => true,
                Some(n) => n > layer + 3,
            })
            .collect();
        for t in victims {
            let _ = ctx.migrate_tensor(t, Tier::Slow);
        }
    }

    fn before_access(&mut self, tensor: TensorId, _kind: AccessKind, ctx: &mut ExecCtx<'_>) {
        // A late prefetch (or a miss) is paid synchronously; tensors vDNN's
        // plan does not cover are demand-faulted in like any GPU access.
        if ctx.is_live(tensor) && ctx.tensor_bytes_in(tensor, Tier::Slow) > 0 {
            if self.offload[tensor.index()] {
                if let Some(pages) = ctx.placement(tensor).map(|a| a.pages) {
                    if let Some(ready) = ctx.mem().range_ready_at(pages) {
                        ctx.stall_until(ready);
                    }
                }
            }
            if let Some(profile) = self.profile.as_ref() {
                ensure_resident_sync(ctx, tensor, profile, self.current_layer);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_dnn::{Executor, SingleTier};
    use sentinel_mem::{HmConfig, MemorySystem};
    use sentinel_models::{ModelSpec, ModelZoo};

    #[test]
    fn vdnn_rejects_models_without_conv() {
        let lstm = ModelZoo::build(&ModelSpec::lstm(2).with_scale(8)).unwrap();
        assert!(Vdnn::for_graph(&lstm).is_none());
        let bert = ModelZoo::build(&ModelSpec::bert_base(2).with_scale(8)).unwrap();
        assert!(Vdnn::for_graph(&bert).is_none());
    }

    #[test]
    fn vdnn_offloads_and_restores_conv_inputs() {
        let g = ModelZoo::build(&ModelSpec::resnet(32, 8).with_scale(4)).unwrap();
        let cfg = HmConfig::gpu_like().without_cache().with_fast_capacity(g.peak_live_bytes() / 3);
        let mut exec = Executor::new(&g, MemorySystem::new(cfg));
        let mut p = Vdnn::for_graph(&g).unwrap();
        let r = exec.run(&mut p, 3).unwrap();
        assert!(r.steps.last().unwrap().demoted_bytes > 0);
        assert!(r.steps.last().unwrap().promoted_bytes > 0);
    }

    #[test]
    fn vdnn_beats_slow_only() {
        let g = ModelZoo::build(&ModelSpec::resnet(32, 8).with_scale(4)).unwrap();
        let cfg = HmConfig::gpu_like().without_cache().with_fast_capacity(g.peak_live_bytes() / 3);
        let v = Executor::new(&g, MemorySystem::new(cfg.clone()))
            .run(&mut Vdnn::for_graph(&g).unwrap(), 3)
            .unwrap();
        let slow =
            Executor::new(&g, MemorySystem::new(cfg)).run(&mut SingleTier::slow(), 3).unwrap();
        assert!(v.steady_step_ns() < slow.steady_step_ns());
    }
}
