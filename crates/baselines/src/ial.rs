//! IAL — the "improved active list" CPU baseline ([19] in the paper).
//!
//! An OS-style page-management scheme: tensors are promoted to fast memory
//! once they prove themselves active (a second touch while resident in slow
//! memory), and a FIFO active list supplies demotion victims when fast
//! memory fills. Migrations happen on the access path and are therefore
//! exposed to the critical path — one of the two reasons the paper measures
//! IAL ~37% behind Sentinel (the other being page-level false sharing,
//! which IAL inherits from the packed allocator).

use sentinel_dnn::{ExecCtx, MemoryManager, Tensor, TensorId};
use sentinel_mem::{pages_for_bytes, AccessKind, Tier};
use std::collections::VecDeque;

/// Accesses in slow memory before a tensor is promoted.
const PROMOTE_THRESHOLD: u32 = 2;
/// Kernel-style migration throttle: at most this multiple of the fast-tier
/// capacity may be promoted per training step (NUMA balancing rate-limits
/// page migration the same way).
const STEP_BUDGET_FACTOR: u64 = 2;

/// The IAL baseline policy.
#[derive(Debug, Default)]
pub struct Ial {
    /// FIFO of fast-resident tensors (promotion order).
    active: VecDeque<TensorId>,
    /// Per-tensor touch counter while slow-resident.
    touches: Vec<u32>,
    /// Bytes promoted during the current step (throttled).
    promoted_this_step: u64,
}

impl Ial {
    /// A new IAL policy.
    #[must_use]
    pub fn new() -> Self {
        Ial::default()
    }

    fn demote_one(&mut self, ctx: &mut ExecCtx<'_>) -> bool {
        while let Some(victim) = self.active.pop_front() {
            if !ctx.is_live(victim) || ctx.tensor_bytes_in(victim, Tier::Fast) == 0 {
                continue; // stale entry
            }
            if let Ok(Some(ready)) = ctx.migrate_tensor(victim, Tier::Slow) {
                ctx.stall_until(ready);
                return true;
            }
        }
        false
    }

    fn promote(&mut self, t: TensorId, ctx: &mut ExecCtx<'_>) {
        let page_size = ctx.mem().page_size();
        let slow_bytes = ctx.tensor_bytes_in(t, Tier::Slow);
        let needed = pages_for_bytes(slow_bytes, page_size);
        if needed > ctx.mem().config().fast_pages() / 2 {
            return; // never promote tensors that would monopolize fast memory
        }
        let budget = STEP_BUDGET_FACTOR * ctx.mem().config().fast.capacity_bytes;
        if self.promoted_this_step + slow_bytes > budget {
            return; // rate limit reached for this step
        }
        self.promoted_this_step += slow_bytes;
        let mut guard = 0;
        while ctx.mem().free_pages(Tier::Fast) < needed && guard < 10_000 {
            if !self.demote_one(ctx) {
                return; // nothing left to demote
            }
            guard += 1;
        }
        if let Ok(Some(ready)) = ctx.migrate_tensor(t, Tier::Fast) {
            // Kernel-style migration: the faulting access waits for the copy.
            ctx.stall_until(ready);
            self.active.push_back(t);
            self.touches[t.index()] = 0;
        }
    }
}

impl MemoryManager for Ial {
    fn name(&self) -> &str {
        "ial"
    }

    fn on_train_begin(&mut self, ctx: &mut ExecCtx<'_>) {
        self.touches = vec![0; ctx.graph().num_tensors()];
    }

    fn on_step_begin(&mut self, _ctx: &mut ExecCtx<'_>) {
        self.promoted_this_step = 0;
    }

    fn tier_for(&mut self, tensor: &Tensor, ctx: &ExecCtx<'_>) -> Tier {
        let pages = pages_for_bytes(tensor.bytes, ctx.mem().page_size());
        if pages <= ctx.mem().free_pages(Tier::Fast) {
            Tier::Fast
        } else {
            Tier::Slow
        }
    }

    fn on_alloc(&mut self, tensor: TensorId, ctx: &mut ExecCtx<'_>) {
        if ctx.tensor_bytes_in(tensor, Tier::Fast) > 0 {
            self.active.push_back(tensor);
        }
    }

    fn before_access(&mut self, tensor: TensorId, _kind: AccessKind, ctx: &mut ExecCtx<'_>) {
        if !ctx.is_live(tensor) || ctx.tensor_bytes_in(tensor, Tier::Slow) == 0 {
            return;
        }
        self.touches[tensor.index()] += 1;
        if self.touches[tensor.index()] >= PROMOTE_THRESHOLD {
            self.promote(tensor, ctx);
        }
    }

    fn on_free(&mut self, tensor: TensorId, _ctx: &mut ExecCtx<'_>) {
        self.touches[tensor.index()] = 0;
        // Active-list entry is removed lazily in demote_one.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_dnn::{Executor, SingleTier};
    use sentinel_mem::{HmConfig, MemorySystem};
    use sentinel_models::{ModelSpec, ModelZoo};

    fn graph() -> sentinel_dnn::Graph {
        ModelZoo::build(&ModelSpec::resnet(32, 8).with_scale(4)).unwrap()
    }

    fn constrained_cfg(g: &sentinel_dnn::Graph) -> HmConfig {
        HmConfig::optane_like().without_cache().with_fast_capacity(g.peak_live_bytes() / 5)
    }

    #[test]
    fn ial_runs_and_migrates() {
        let g = graph();
        let cfg = constrained_cfg(&g);
        let mut exec = Executor::new(&g, MemorySystem::new(cfg));
        let r = exec.run(&mut Ial::new(), 4).unwrap();
        assert!(r.steps.last().unwrap().migrated_bytes() > 0);
    }

    #[test]
    fn ial_beats_slow_only() {
        let g = graph();
        let cfg = constrained_cfg(&g);
        let ial = Executor::new(&g, MemorySystem::new(cfg.clone())).run(&mut Ial::new(), 4).unwrap();
        let slow = Executor::new(&g, MemorySystem::new(cfg)).run(&mut SingleTier::slow(), 4).unwrap();
        assert!(ial.steady_step_ns() < slow.steady_step_ns());
    }

    #[test]
    fn ial_exposes_migration_as_stall() {
        let g = graph();
        let cfg = constrained_cfg(&g);
        let mut exec = Executor::new(&g, MemorySystem::new(cfg));
        let r = exec.run(&mut Ial::new(), 4).unwrap();
        let steady = &r.steps[r.steps.len() - 1];
        assert!(steady.breakdown.stall_ns > 0, "IAL migration should stall the critical path");
    }
}
