//! Uniform harness over every baseline (and the single-tier references).

use crate::autotm::AutoTm;
use crate::capuchin::Capuchin;
use crate::ial::Ial;
use crate::memory_mode::MemoryMode;
use crate::numa::FirstTouchNuma;
use crate::swapadvisor::SwapAdvisor;
use crate::um::UnifiedMemory;
use crate::vdnn::Vdnn;
use sentinel_dnn::{ExecError, Executor, Graph, MemoryManager, SingleTier, TrainReport};
use sentinel_mem::{HmConfig, MemorySystem};

/// Every comparison system of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// Everything in slow memory (normalization baseline of Figure 7).
    SlowOnly,
    /// Everything in fast memory (the red line of Figure 7).
    FastOnly,
    /// First-touch NUMA allocation.
    FirstTouch,
    /// Optane Memory Mode (DRAM as hardware cache).
    MemoryModeCache,
    /// Improved active list ([19]).
    Ial,
    /// AutoTM ([7]).
    AutoTm,
    /// CUDA Unified Memory ([37]).
    UnifiedMemory,
    /// vDNN ([6]) — convolution models only.
    Vdnn,
    /// SwapAdvisor ([8]).
    SwapAdvisor,
    /// Capuchin ([9]).
    Capuchin,
}

impl Baseline {
    /// All baselines, in the order the paper introduces them.
    #[must_use]
    pub fn all() -> Vec<Baseline> {
        vec![
            Baseline::SlowOnly,
            Baseline::FastOnly,
            Baseline::FirstTouch,
            Baseline::MemoryModeCache,
            Baseline::Ial,
            Baseline::AutoTm,
            Baseline::UnifiedMemory,
            Baseline::Vdnn,
            Baseline::SwapAdvisor,
            Baseline::Capuchin,
        ]
    }

    /// Short name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::SlowOnly => "slow-only",
            Baseline::FastOnly => "fast-only",
            Baseline::FirstTouch => "first-touch",
            Baseline::MemoryModeCache => "memory-mode",
            Baseline::Ial => "ial",
            Baseline::AutoTm => "autotm",
            Baseline::UnifiedMemory => "um",
            Baseline::Vdnn => "vdnn",
            Baseline::SwapAdvisor => "swapadvisor",
            Baseline::Capuchin => "capuchin",
        }
    }

    /// Instantiate the policy for a graph/platform, or `None` when the
    /// baseline cannot handle the model (vDNN without convolutions).
    #[must_use]
    pub fn make(&self, graph: &Graph, cfg: &HmConfig) -> Option<Box<dyn MemoryManager>> {
        Some(match self {
            Baseline::SlowOnly => Box::new(SingleTier::slow()),
            Baseline::FastOnly => Box::new(SingleTier::fast()),
            Baseline::FirstTouch => Box::new(FirstTouchNuma::new()),
            Baseline::MemoryModeCache => Box::new(MemoryMode::new()),
            Baseline::Ial => Box::new(Ial::new()),
            Baseline::AutoTm => Box::new(AutoTm::new()),
            Baseline::UnifiedMemory => Box::new(UnifiedMemory::new()),
            Baseline::Vdnn => Box::new(Vdnn::for_graph(graph)?),
            Baseline::SwapAdvisor => Box::new(SwapAdvisor::plan_for(
                graph,
                cfg.fast.capacity_bytes,
                cfg.promote_bw_bytes_per_ns,
            )),
            Baseline::Capuchin => Box::new(Capuchin::new()),
        })
    }

    /// Qualitative feature flags (the rows of the paper's Table I).
    #[must_use]
    pub fn traits(&self) -> PolicyTraits {
        match self {
            Baseline::Vdnn => PolicyTraits {
                dynamic_profiling: false,
                minimizes_fast_memory: false,
                graph_agnostic: false,
                counts_memory_accesses: false,
                avoids_false_sharing: false,
            },
            Baseline::AutoTm => PolicyTraits {
                dynamic_profiling: false,
                minimizes_fast_memory: true,
                graph_agnostic: true,
                counts_memory_accesses: false,
                avoids_false_sharing: false,
            },
            Baseline::SwapAdvisor => PolicyTraits {
                dynamic_profiling: true,
                minimizes_fast_memory: false,
                graph_agnostic: true,
                counts_memory_accesses: false,
                avoids_false_sharing: false,
            },
            Baseline::Capuchin => PolicyTraits {
                dynamic_profiling: true,
                minimizes_fast_memory: true,
                graph_agnostic: true,
                counts_memory_accesses: false,
                avoids_false_sharing: false,
            },
            _ => PolicyTraits {
                dynamic_profiling: false,
                minimizes_fast_memory: false,
                graph_agnostic: true,
                counts_memory_accesses: false,
                avoids_false_sharing: false,
            },
        }
    }
}

/// The Table-I qualitative comparison axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyTraits {
    /// Profiles the running workload rather than a static model.
    pub dynamic_profiling: bool,
    /// Actively minimizes fast-memory consumption across all tensors.
    pub minimizes_fast_memory: bool,
    /// Needs no DNN domain knowledge.
    pub graph_agnostic: bool,
    /// Counts memory accesses (vs just operand references).
    pub counts_memory_accesses: bool,
    /// Avoids page-level false sharing.
    pub avoids_false_sharing: bool,
}

impl PolicyTraits {
    /// Sentinel's row of Table I: everything.
    #[must_use]
    pub fn sentinel() -> Self {
        PolicyTraits {
            dynamic_profiling: true,
            minimizes_fast_memory: true,
            graph_agnostic: true,
            counts_memory_accesses: true,
            avoids_false_sharing: true,
        }
    }
}

/// Run a baseline on `graph` for `steps`; `Ok(None)` when not applicable.
///
/// # Errors
///
/// Propagates [`ExecError`] from execution.
pub fn run_baseline(
    baseline: Baseline,
    graph: &Graph,
    cfg: &HmConfig,
    steps: usize,
) -> Result<Option<TrainReport>, ExecError> {
    let Some(mut policy) = baseline.make(graph, cfg) else {
        return Ok(None);
    };
    let mem = MemorySystem::new(cfg.clone());
    let mut exec = Executor::new(graph, mem);
    let report = exec.run(policy.as_mut(), steps)?;
    Ok(Some(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_models::{ModelSpec, ModelZoo};

    #[test]
    fn every_baseline_runs_on_a_cnn() {
        let g = ModelZoo::build(&ModelSpec::resnet(20, 4).with_scale(4)).unwrap();
        let cfg = HmConfig::optane_like()
            .without_cache()
            .with_fast_capacity(g.peak_live_bytes() / 4);
        for b in Baseline::all() {
            let r = run_baseline(b, &g, &cfg, 3).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            let r = r.unwrap_or_else(|| panic!("{} not applicable to a CNN", b.name()));
            assert_eq!(r.steps_executed(), 3, "{}", b.name());
            assert!(r.steady_step_ns() > 0, "{}", b.name());
        }
    }

    #[test]
    fn vdnn_is_skipped_for_lstm() {
        let g = ModelZoo::build(&ModelSpec::lstm(2).with_scale(8)).unwrap();
        let cfg = HmConfig::optane_like().without_cache();
        assert!(run_baseline(Baseline::Vdnn, &g, &cfg, 2).unwrap().is_none());
    }

    #[test]
    fn sentinel_traits_dominate_table1() {
        let s = PolicyTraits::sentinel();
        assert!(s.dynamic_profiling && s.counts_memory_accesses && s.avoids_false_sharing);
        for b in Baseline::all() {
            let t = b.traits();
            assert!(!t.counts_memory_accesses, "{} should not count accesses", b.name());
            assert!(!t.avoids_false_sharing, "{}", b.name());
        }
    }

    #[test]
    fn ordering_on_constrained_memory_matches_paper_shape() {
        // Fast-only < Sentinel-class policies < IAL-class < slow-only in
        // step time. Here we check the baseline-only portion: fast-only is
        // fastest, slow-only is slowest.
        let g = ModelZoo::build(&ModelSpec::resnet(32, 8).with_scale(4)).unwrap();
        let cfg = HmConfig::optane_like()
            .without_cache()
            .with_fast_capacity(g.peak_live_bytes() / 5);
        let fast_cfg = HmConfig::optane_like().without_cache();
        let fast = run_baseline(Baseline::FastOnly, &g, &fast_cfg, 3).unwrap().unwrap();
        let slow = run_baseline(Baseline::SlowOnly, &g, &cfg, 3).unwrap().unwrap();
        let ial = run_baseline(Baseline::Ial, &g, &cfg, 3).unwrap().unwrap();
        let autotm = run_baseline(Baseline::AutoTm, &g, &cfg, 3).unwrap().unwrap();
        assert!(fast.steady_step_ns() < autotm.steady_step_ns());
        assert!(autotm.steady_step_ns() < slow.steady_step_ns());
        assert!(ial.steady_step_ns() < slow.steady_step_ns());
    }
}

impl sentinel_util::ToJson for Baseline {
    fn to_json(&self) -> sentinel_util::Json {
        sentinel_util::Json::Str(self.name().to_owned())
    }
}

sentinel_util::impl_to_json!(PolicyTraits {
    dynamic_profiling,
    minimizes_fast_memory,
    graph_agnostic,
    counts_memory_accesses,
    avoids_false_sharing,
});
