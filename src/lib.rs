//! # Sentinel — umbrella crate
//!
//! A faithful, from-scratch Rust reproduction of *Sentinel: Efficient Tensor
//! Migration and Allocation on Heterogeneous Memory Systems for Deep
//! Learning* (HPCA 2021).
//!
//! This crate re-exports the whole workspace so downstream users can depend on
//! a single crate:
//!
//! * [`mem`] — the heterogeneous-memory substrate: simulated clock, memory
//!   tiers, page tables with poison-bit profiling, a dual-channel migration
//!   engine, NUMA first-touch and Memory-Mode page caching.
//! * [`dnn`] — the deep-learning runtime substrate: tensors, operations with
//!   an analytic cost model, dataflow graphs, allocators and the
//!   training-step executor.
//! * [`models`] — a model zoo (ResNet, BERT, LSTM, MobileNet, DCGAN) that
//!   builds realistic training graphs at parameterized depth and batch size.
//! * [`profiler`] — tensor-level dynamic profiling (Section III of the
//!   paper) plus the characterization analyses behind Observations 1–3.
//! * [`core`] — the Sentinel runtime itself: data reorganization,
//!   short-lived tensor reservation, the migration-interval solver and the
//!   adaptive layer-based migration algorithm, including the GPU variant.
//! * [`baselines`] — the eight comparison systems from the paper's
//!   evaluation (IAL, AutoTM, vDNN, SwapAdvisor, Capuchin, UM, first-touch
//!   NUMA and Memory Mode).
//! * [`bench`] — the experiment registry regenerating every table and
//!   figure of the paper, runnable serially or on a worker pool.
//! * [`serve`] — the `sentineld` daemon: a framed JSON-over-TCP wire
//!   protocol serving placement-plan queries and live-streamed simulation
//!   runs (binaries `sentineld` and `sentinel_query`).
//! * [`util`] — zero-dependency runtime utilities (seeded RNG, JSON,
//!   property-test harness, timing harness, scoped thread pool).
//!
//! ## Quickstart
//!
//! ```
//! use sentinel::core::{fast_sized_for, SentinelConfig, SentinelRuntime};
//! use sentinel::mem::HmConfig;
//! use sentinel::models::{ModelSpec, ModelZoo};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a small ResNet training graph.
//! let graph = ModelZoo::build(&ModelSpec::resnet(20, 8).with_scale(4))?;
//!
//! // A heterogeneous memory with fast memory sized at 20% of peak demand.
//! let hm = fast_sized_for(HmConfig::optane_like(), &graph, 0.2);
//!
//! // Run Sentinel: profile one step, reorganize, then train with migration.
//! let runtime = SentinelRuntime::new(SentinelConfig::default(), hm);
//! let outcome = runtime.train(&graph, 8)?;
//! assert_eq!(outcome.steps_executed, 8);
//! # Ok(())
//! # }
//! ```

pub use sentinel_baselines as baselines;
pub use sentinel_bench as bench;
pub use sentinel_core as core;
pub use sentinel_dnn as dnn;
pub use sentinel_mem as mem;
pub use sentinel_models as models;
pub use sentinel_profiler as profiler;
pub use sentinel_serve as serve;
pub use sentinel_util as util;
