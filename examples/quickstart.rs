//! Quickstart: train a ResNet on simulated Optane-based heterogeneous
//! memory with Sentinel managing tensor placement and migration.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sentinel::core::{fast_sized_for, SentinelConfig, SentinelRuntime};
use sentinel::mem::HmConfig;
use sentinel::models::{ModelSpec, ModelZoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a training graph: ResNet-32, batch 64, full width.
    let spec = ModelSpec::resnet(32, 64);
    let graph = ModelZoo::build(&spec)?;
    println!(
        "model {}: {} layers, {} tensors, peak memory {} MiB",
        graph.name(),
        graph.num_layers(),
        graph.num_tensors(),
        graph.peak_live_bytes() >> 20
    );

    // 2. Describe the platform: DDR4 + Optane, with usable fast memory
    //    capped at 20% of the model's peak consumption (the paper's setup).
    let hm = fast_sized_for(HmConfig::optane_like(), &graph, 0.2);
    println!(
        "platform {}: fast = {} MiB, slow = {} GiB",
        hm.name,
        hm.fast.capacity_bytes >> 20,
        hm.slow.capacity_bytes >> 30
    );

    // 3. Train. The first step profiles (page-aligned allocation + poison
    //    faults); Sentinel then reorganizes allocation and migrates tensors
    //    per the solver-chosen interval plan.
    let runtime = SentinelRuntime::new(SentinelConfig::default(), hm);
    let outcome = runtime.train(&graph, 8)?;

    println!("\nSentinel decisions:");
    println!("  migration interval length: {} layers", outcome.stats.mil);
    println!("  short-lived reservation:   {} pages", outcome.stats.reserve_pages);
    println!("  case-2 / case-3 events:    {} / {}", outcome.stats.case2_events, outcome.stats.case3_events);
    println!("  test-and-trial steps:      {}", outcome.stats.trial_steps);

    println!("\nper-step timings:");
    for s in &outcome.report.steps {
        println!(
            "  step {}: {:>8.2} ms (compute {:.2}, memory {:.2}, stall {:.2}) migrated {} MiB",
            s.step,
            s.duration_ns as f64 / 1e6,
            s.breakdown.compute_ns as f64 / 1e6,
            s.breakdown.memory_ns as f64 / 1e6,
            s.breakdown.stall_ns as f64 / 1e6,
            s.migrated_bytes() >> 20,
        );
    }
    println!(
        "\nsteady-state throughput: {:.1} samples/s (step {:.2} ms)",
        outcome.report.throughput(),
        outcome.report.steady_step_ns() as f64 / 1e6
    );
    Ok(())
}
