//! Reproduce the paper's Section III characterization interactively:
//! tensor-level profiling, Observations 1–3, and the false-sharing analysis.
//!
//! ```text
//! cargo run --release --example characterize
//! ```

use sentinel::mem::HmConfig;
use sentinel::models::{ModelSpec, ModelZoo};
use sentinel::profiler::{analyze_false_sharing, characterize, Profiler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ModelSpec::resnet(32, 64);
    let graph = ModelZoo::build(&spec)?;
    println!("profiling one training step of {}...\n", graph.name());

    let profile = Profiler::new(HmConfig::optane_like()).profile(&graph)?;
    let ch = characterize(&graph, &profile);

    println!("== Observation 1: many small, short-lived tensors ==");
    println!("  tensors:                     {}", ch.total_tensors);
    println!("  short-lived (≤1 layer):      {:.1}%", 100.0 * ch.short_lived_fraction);
    println!("  small (<1 page) among those: {:.1}%", 100.0 * ch.small_among_short_fraction);
    println!(
        "  peak short-lived footprint:  {:.1} MiB of {:.1} MiB peak",
        ch.peak_short_lived_bytes as f64 / (1 << 20) as f64,
        ch.peak_bytes as f64 / (1 << 20) as f64
    );

    println!("\n== Observation 2: skewed main-memory access counts ==");
    println!("  {:<12} {:>8} {:>12}", "accesses", "tensors", "bytes (MiB)");
    for b in &ch.hotness {
        println!(
            "  {:<12} {:>8} {:>12.1}",
            b.label,
            b.tensor_count,
            b.bytes as f64 / (1 << 20) as f64
        );
    }

    println!("\n== Observation 3: page-level false sharing ==");
    let fs = analyze_false_sharing(&graph, &HmConfig::optane_like(), 10)?;
    println!("  pages hosting ≥2 tensors:    {:.1}%", 100.0 * fs.shared_fraction());
    println!(
        "  cold (≤{} accesses) tensors:  {:.1} MiB",
        fs.cold_threshold,
        fs.cold_tensor_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "  cold *pages*:                {:.1} MiB",
        fs.cold_page_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "  cold bytes hidden by pages:  {:.1} MiB (what page-level profiling would misplace)",
        fs.hidden_cold_bytes() as f64 / (1 << 20) as f64
    );

    println!("\n== Hottest tensors ==");
    for id in profile.hot_order().into_iter().take(8) {
        let t = profile.tensor(id);
        println!(
            "  {:<22} {:>6} accesses/page  {:>10} bytes  {}",
            graph.tensor(id).name,
            t.mm_accesses,
            t.bytes,
            if t.short_lived { "short-lived" } else { "long-lived" }
        );
    }
    Ok(())
}
