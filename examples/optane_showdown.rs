//! Optane-platform policy showdown: run every CPU memory-management policy
//! on one model at 20% fast memory and compare (the Figure 7/8 scenario).
//!
//! ```text
//! cargo run --release --example optane_showdown [model]
//! ```
//!
//! `model` ∈ {resnet32, bert, lstm, mobilenet, dcgan}; default resnet32.

use sentinel::baselines::{run_baseline, Baseline};
use sentinel::core::{fast_sized_for, SentinelConfig, SentinelRuntime};
use sentinel::mem::HmConfig;
use sentinel::models::{ModelSpec, ModelZoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "resnet32".into());
    let spec = match which.as_str() {
        "bert" => ModelSpec::bert_base(8),
        "lstm" => ModelSpec::lstm(32),
        "mobilenet" => ModelSpec::mobilenet(16),
        "dcgan" => ModelSpec::dcgan(64),
        _ => ModelSpec::resnet(32, 64),
    };
    let graph = ModelZoo::build(&spec)?;
    let hm = fast_sized_for(HmConfig::optane_like(), &graph, 0.2);
    println!(
        "{}: peak {} MiB, fast capped at {} MiB (20%)\n",
        graph.name(),
        graph.peak_live_bytes() >> 20,
        hm.fast.capacity_bytes >> 20
    );

    // Slow-only defines the normalization baseline; fast-only the ceiling.
    let slow = run_baseline(Baseline::SlowOnly, &graph, &hm, 4)?.expect("applies");
    let slow_ns = slow.steady_step_ns() as f64;

    println!("{:<14} {:>12} {:>14} {:>16}", "policy", "step (ms)", "vs slow-only", "migrated/step");
    let show = |name: &str, step_ns: u64, migrated: u64| {
        println!(
            "{:<14} {:>12.2} {:>13.2}x {:>12} MiB",
            name,
            step_ns as f64 / 1e6,
            slow_ns / step_ns as f64,
            migrated >> 20
        );
    };
    show("slow-only", slow.steady_step_ns(), 0);

    for b in [Baseline::FirstTouch, Baseline::MemoryModeCache, Baseline::Ial, Baseline::AutoTm] {
        if let Some(r) = run_baseline(b, &graph, &hm, 4)? {
            show(b.name(), r.steady_step_ns(), r.steady_migrated_bytes());
        }
    }

    let sentinel = SentinelRuntime::new(SentinelConfig::default(), hm).train(&graph, 8)?;
    show("sentinel", sentinel.report.steady_step_ns(), sentinel.report.steady_migrated_bytes());

    let fast_hm = fast_sized_for(HmConfig::optane_like(), &graph, 1.5);
    let fast = run_baseline(Baseline::FastOnly, &graph, &fast_hm, 4)?.expect("applies");
    show("fast-only", fast.steady_step_ns(), 0);

    println!(
        "\nsentinel chose MIL = {} layers; case 2/3 events: {}/{}; trial steps: {}",
        sentinel.stats.mil,
        sentinel.stats.case2_events,
        sentinel.stats.case3_events,
        sentinel.stats.trial_steps
    );
    Ok(())
}
