//! Dynamic graphs via bucketed profiling (paper Section IV-E): an NLP-style
//! workload whose batches fall into three input-length buckets, each with
//! its own profile and migration plan.
//!
//! ```text
//! cargo run --release --example dynamic_buckets
//! ```

use sentinel::core::{DataflowTracker, DynamicRuntime, SentinelConfig};
use sentinel::mem::HmConfig;
use sentinel::models::{ModelFamily, ModelSpec, ModelZoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three sequence-length buckets of the same LSTM language model.
    let timesteps = [10u32, 20, 30];
    let graphs: Vec<_> = timesteps
        .iter()
        .map(|&t| {
            ModelZoo::build(
                &ModelSpec { family: ModelFamily::Lstm { hidden: 1024, timesteps: t }, batch: 16, scale: 2 },
            )
        })
        .collect::<Result<_, _>>()?;
    for (t, g) in timesteps.iter().zip(&graphs) {
        println!(
            "bucket T={t}: {} layers, peak {} MiB",
            g.num_layers(),
            g.peak_live_bytes() >> 20
        );
    }

    // Batches arrive with varying lengths; the tracker buckets them.
    let mut tracker = DataflowTracker::new();
    let arrivals = [12u64, 19, 28, 11, 22, 9, 30, 18, 25, 10, 27, 21];
    let schedule: Vec<usize> = arrivals
        .iter()
        .map(|&len| {
            // Round the sequence length up to the nearest bucket: ≤10 → T=10,
            // 11..=20 → T=20, 21..=30 → T=30. The signature doubles as the
            // graph index; the tracker just detects first sightings.
            let bucket = (len.div_ceil(10).clamp(1, 3) - 1) as usize;
            let (_, is_new) = tracker.observe(bucket as u64);
            if is_new {
                println!("new dataflow signature (len {len}) → bucket {bucket}: profiling triggered");
            }
            bucket
        })
        .collect();

    let runtime = DynamicRuntime::new(
        SentinelConfig::default(),
        HmConfig::optane_like(),
        0.25,
        graphs,
    );
    let outcome = runtime.train_schedule(&schedule)?;

    println!("\nprofiling steps spent: {} (one per visited bucket)", outcome.profiling_steps);
    for b in 0..runtime.num_buckets() {
        if let Some(steady) = outcome.steady_step_ns(b) {
            println!(
                "bucket {b}: {} steps, MIL = {:?}, steady step {:.2} ms",
                outcome.steps_per_bucket[b],
                outcome.mil_per_bucket[b].unwrap_or(0),
                steady as f64 / 1e6
            );
        } else {
            println!("bucket {b}: visited {} steps (no steady state yet)", outcome.steps_per_bucket[b]);
        }
    }
    Ok(())
}
