//! Explore the migration-interval trade-off (the paper's Figure 5 and
//! Equations 1–2): sweep fixed interval lengths and compare with the
//! analytic solver's choice.
//!
//! ```text
//! cargo run --release --example interval_tuning
//! ```

use sentinel::core::{fast_sized_for, SentinelConfig, SentinelRuntime};
use sentinel::mem::HmConfig;
use sentinel::models::{ModelSpec, ModelZoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ModelSpec::resnet(32, 64);
    let graph = ModelZoo::build(&spec)?;
    let hm = fast_sized_for(HmConfig::optane_like(), &graph, 0.3);
    println!(
        "{}: {} layers, fast = 30% of peak\n",
        graph.name(),
        graph.num_layers()
    );

    println!("{:>4} {:>12} {:>8} {:>8}", "MIL", "step (ms)", "case2", "case3");
    let mut best = (0usize, u64::MAX);
    for mil in 1..=12 {
        let outcome = SentinelRuntime::new(SentinelConfig::default().with_mil(mil), hm.clone())
            .train(&graph, 8)?;
        let ns = outcome.report.steady_step_ns();
        if ns < best.1 {
            best = (mil, ns);
        }
        println!(
            "{:>4} {:>12.2} {:>8} {:>8}",
            mil,
            ns as f64 / 1e6,
            outcome.stats.case2_events,
            outcome.stats.case3_events
        );
    }

    // The solver's pick (Equations 1 and 2) without an override.
    let solved = SentinelRuntime::new(SentinelConfig::default(), hm).train(&graph, 8)?;
    println!(
        "\nempirical best MIL = {} ({:.2} ms); solver chose MIL = {} ({:.2} ms)",
        best.0,
        best.1 as f64 / 1e6,
        solved.stats.mil,
        solved.report.steady_step_ns() as f64 / 1e6
    );
    if let Some(sol) = &solved.mil_solution {
        println!("\nsolver view (Eq. 1 space constraint):");
        for c in sol.candidates.iter().take(12) {
            println!(
                "  MIL {:>2}: demand {:>7.1} MiB  feasible: {}",
                c.mil,
                c.tensor_bytes as f64 / (1 << 20) as f64,
                c.feasible
            );
        }
    }
    Ok(())
}
