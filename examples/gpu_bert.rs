//! Sentinel-GPU on BERT: device memory too small for the batch, tensors
//! swapped over PCIe (the Figure 12 scenario).
//!
//! ```text
//! cargo run --release --example gpu_bert
//! ```

use sentinel::baselines::{run_baseline, Baseline};
use sentinel::core::{fast_sized_for, SentinelConfig, SentinelRuntime};
use sentinel::mem::HmConfig;
use sentinel::models::{ModelSpec, ModelZoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ModelSpec::bert_base(8).with_scale(2);
    let graph = ModelZoo::build(&spec)?;
    // Device memory holds only 60% of the model's peak footprint.
    let hm = fast_sized_for(HmConfig::gpu_like(), &graph, 0.6);
    println!(
        "{}: peak {} MiB, device memory {} MiB (60%), PCIe {} GB/s\n",
        graph.name(),
        graph.peak_live_bytes() >> 20,
        hm.fast.capacity_bytes >> 20,
        hm.promote_bw_bytes_per_ns
    );

    let um = run_baseline(Baseline::UnifiedMemory, &graph, &hm, 4)?.expect("applies");
    let um_ns = um.steady_step_ns() as f64;
    println!("{:<14} {:>12} {:>10} {:>18}", "policy", "step (ms)", "vs UM", "exposed transfer");
    let show = |name: &str, step_ns: u64, stall_ns: u64| {
        println!(
            "{:<14} {:>12.2} {:>9.2}x {:>17.0}%",
            name,
            step_ns as f64 / 1e6,
            um_ns / step_ns as f64,
            100.0 * stall_ns as f64 / step_ns as f64
        );
    };
    show("um", um.steady_step_ns(), um.steady_breakdown().stall_ns);
    for b in [Baseline::AutoTm, Baseline::SwapAdvisor, Baseline::Capuchin] {
        if let Some(r) = run_baseline(b, &graph, &hm, 4)? {
            show(b.name(), r.steady_step_ns(), r.steady_breakdown().stall_ns);
        }
    }

    // Sentinel-GPU: pinned-memory profiling, per-tensor waits in Case 3.
    let sentinel = SentinelRuntime::new(SentinelConfig::gpu(), hm).train(&graph, 8)?;
    show(
        "sentinel-gpu",
        sentinel.report.steady_step_ns(),
        sentinel.report.steady_breakdown().stall_ns,
    );
    println!(
        "\nsentinel-gpu: MIL = {} layers, promoted {} MiB per step",
        sentinel.stats.mil,
        sentinel.report.steps.last().map(|s| s.promoted_bytes >> 20).unwrap_or(0),
    );
    println!("(vDNN skipped: BERT has no convolutions, as in the paper)");
    Ok(())
}
