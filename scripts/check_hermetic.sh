#!/usr/bin/env bash
# Verify the workspace builds and tests fully offline and depends on nothing
# outside the tree: Cargo.lock and the resolved dependency graph must contain
# only sentinel-* packages. See README.md "Building" for the policy.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== offline release build =="
cargo build --release --offline

echo "== offline test suite =="
cargo test -q --offline

echo "== parallel runner is deterministic (--jobs 1 vs --jobs 4) =="
cargo test -q --offline --test parallel_determinism

echo "== batched access path matches the per-page reference =="
cargo test -q --offline -p sentinel-mem --test access_equivalence_prop

echo "== access-path bench compiles and runs (smoke mode, no results write) =="
SENTINEL_BENCH_SMOKE=1 cargo run -q --offline -p sentinel-bench --bin bench_access_path

echo "== event-driven time skips match the per-step reference =="
cargo test -q --offline -p sentinel-core --test event_equivalence_prop
cargo test -q --offline -p sentinel-core --test boundary_tie

echo "== event-core bench compiles and runs (smoke mode, no results write) =="
SENTINEL_BENCH_SMOKE=1 cargo run -q --offline -p sentinel-bench --bin bench_event_core

echo "== planner sweep and interval-set table match their references =="
cargo test -q --offline -p sentinel-core --test planner_equivalence_prop

echo "== planner bench compiles and runs (smoke mode, no results write) =="
SENTINEL_BENCH_SMOKE=1 cargo run -q --offline -p sentinel-bench --bin bench_planner

echo "== chaos suite: randomized faults never break residency invariants =="
cargo test -q --offline -p sentinel-mem --test chaos_migration

echo "== zero-rate fault injection is byte-transparent =="
cargo test -q --offline --test no_fault_transparency

echo "== chaos smoke: fixed-seed faulty run completes end to end =="
SENTINEL_FAULT_SEED=0xFA17 SENTINEL_FAULT_PROFILE=light \
    cargo run -q --offline --release -p sentinel-bench --bin run_experiments -- --fast --jobs 2 chaos

echo "== adaptation: degradation ladder + becalmed-loop byte-transparency =="
cargo test -q --offline -p sentinel-core --test adaptive_degradation
cargo test -q --offline -p sentinel-core --test adaptive_transparency

echo "== adaptation: drift-adaptive run recovers to the shrunk-machine oracle =="
cargo test -q --offline -p sentinel-bench --test adaptive_recovery

echo "== cluster invariants: randomized traces x quota policies x faults =="
# Fast default case count; SENTINEL_PROP_CASES opts into the full sweep.
cargo test -q --offline --test cluster_invariants_prop

echo "== cluster determinism: jobs-invariance, replay, transparency, isolation =="
cargo test -q --offline --test cluster_determinism

echo "== tracing off is byte-transparent; full traces are jobs-deterministic =="
# Also validates every emitted trace with the in-tree JSON parser.
cargo test -q --offline --test trace_transparency

echo "== trace smoke: --trace-dir emits Chrome trace files =="
repo_root=$PWD
trace_tmp=$(mktemp -d)
trap 'rm -rf "$trace_tmp"' EXIT
# Run from a scratch cwd: the runner writes a relative results/ directory,
# which must not touch the committed results.
( cd "$trace_tmp" && \
    "$repo_root/target/release/run_experiments" --fast --jobs 2 --trace-dir traces fig7 )
trace_count=$(find "$trace_tmp/traces" -name '*.trace.json' | wc -l)
if [[ "$trace_count" -lt 1 ]]; then
    echo "FAIL: --trace-dir produced no trace files" >&2
    exit 1
fi

echo "== cluster smoke: seeded 3-tenant trace under quota pressure =="
# Scratch cwd again: fast-mode results must not clobber the committed ones.
( cd "$trace_tmp" && \
    "$repo_root/target/release/run_experiments" \
        --fast --jobs 2 --tenants 3 --arrival-seed 0xC1A5 --min-quota-frac 0.1 cluster )
if [[ ! -s "$trace_tmp/results/cluster.json" ]]; then
    echo "FAIL: cluster smoke wrote no results/cluster.json" >&2
    exit 1
fi

echo "== adaptive smoke: mid-run co-tenant arrival, all three arms =="
# Scratch cwd again: fast-mode results must not clobber the committed ones.
( cd "$trace_tmp" && \
    "$repo_root/target/release/run_experiments" --fast --jobs 2 adaptive )
if [[ ! -s "$trace_tmp/results/adaptive.json" ]]; then
    echo "FAIL: adaptive smoke wrote no results/adaptive.json" >&2
    exit 1
fi

echo "== wire layer: loopback daemon suite + streamed/batch byte-identity =="
cargo test -q --offline -p sentinel-serve --test loopback
cargo test -q --offline -p sentinel-serve --test stream_determinism

echo "== daemon smoke: ephemeral port, plan query, streamed run, clean exit =="
daemon_log="$trace_tmp/sentineld.log"
"$repo_root/target/release/sentineld" --addr 127.0.0.1:0 --workers 2 \
    > "$daemon_log" 2>&1 &
daemon_pid=$!
daemon_addr=""
for _ in $(seq 1 100); do
    daemon_addr=$(sed -n 's/^sentineld listening on //p' "$daemon_log")
    [[ -n "$daemon_addr" ]] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "FAIL: sentineld died before binding:" >&2
        cat "$daemon_log" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ -z "$daemon_addr" ]]; then
    echo "FAIL: sentineld never reported its address" >&2
    kill "$daemon_pid" 2>/dev/null || true
    exit 1
fi
query="$repo_root/target/release/sentinel_query"
body='{"model":{"family":"resnet","depth":32,"batch":8,"scale":4},"machine":{"fast_fraction":0.2},"steps":4}'
plan_out=$("$query" "$daemon_addr" plan "$body")
if [[ "$plan_out" != *'"type":"plan"'* || "$plan_out" != *'"mil":'* ]]; then
    echo "FAIL: plan query returned: $plan_out" >&2
    kill "$daemon_pid" 2>/dev/null || true
    exit 1
fi
run_out=$("$query" "$daemon_addr" run "$body")
step_count=$(grep -c '"type":"step"' <<< "$run_out" || true)
if [[ "$step_count" -ne 4 || "$run_out" != *'"type":"run_complete"'* ]]; then
    echo "FAIL: streamed run returned $step_count step frames: $run_out" >&2
    kill "$daemon_pid" 2>/dev/null || true
    exit 1
fi
"$query" "$daemon_addr" shutdown > /dev/null
# A clean `wait` proves every worker thread was joined — the scoped pool
# cannot return with threads still alive, so exit 0 == no stray threads.
if ! wait "$daemon_pid"; then
    echo "FAIL: sentineld did not shut down cleanly:" >&2
    cat "$daemon_log" >&2
    exit 1
fi

echo "== dependency closure is sentinel-* only =="
bad_lock=$(grep '^name = ' Cargo.lock | grep -v '"sentinel' || true)
if [[ -n "$bad_lock" ]]; then
    echo "FAIL: non-sentinel packages in Cargo.lock:" >&2
    echo "$bad_lock" >&2
    exit 1
fi
bad_tree=$(cargo tree --workspace --offline --prefix none | awk '{print $1}' \
    | sort -u | grep -v '^sentinel' || true)
if [[ -n "$bad_tree" ]]; then
    echo "FAIL: non-sentinel packages in cargo tree:" >&2
    echo "$bad_tree" >&2
    exit 1
fi

echo "OK: hermetic (build + tests offline, sentinel-* packages only)"
