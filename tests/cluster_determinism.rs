//! The cluster scheduler's determinism contract, locked down byte-for-byte:
//!
//! * a fixed-seed cluster run serializes identically across `--jobs 1` and
//!   `--jobs 4` and across back-to-back replays,
//! * a single-job cluster is byte-identical to the plain
//!   [`SentinelRuntime`](sentinel::core::SentinelRuntime) path (the
//!   scheduler is transparent when there is nothing to arbitrate),
//! * under static quotas, faults injected into tenant A never perturb one
//!   byte of tenant B's report.

use sentinel::bench::{experiment_registry, ExpConfig};
use sentinel::core::{
    fast_sized_for, ClusterConfig, ClusterScheduler, JobSpec, QuotaPolicy, SentinelConfig,
    SentinelRuntime,
};
use sentinel::mem::{FaultProfile, HmConfig};
use sentinel::models::{ModelSpec, ModelZoo};
use sentinel::util::ToJson;

/// Render the `cluster` experiment to its on-disk JSON bytes at a given
/// worker count, exactly as `run_experiments --jobs N` would.
fn render_cluster(jobs: usize) -> String {
    let (_, generator) = experiment_registry()
        .into_iter()
        .find(|(id, _)| *id == "cluster")
        .expect("cluster experiment is registered");
    sentinel::util::set_default_jobs(jobs);
    let result = generator(&ExpConfig::new(true).with_jobs(jobs));
    sentinel::util::set_default_jobs(0);
    result.to_json().to_pretty_string()
}

#[test]
fn cluster_experiment_is_byte_identical_at_any_job_count() {
    let serial = render_cluster(1);
    let parallel = render_cluster(4);
    assert_eq!(serial, parallel, "cluster result changed between --jobs 1 and --jobs 4");
}

#[test]
fn cluster_replay_is_byte_identical() {
    let graph = ModelZoo::build(&ModelSpec::resnet(20, 4).with_scale(4)).unwrap();
    let small = ModelZoo::build(&ModelSpec::mobilenet(4).with_scale(4)).unwrap();
    let peak = graph.peak_live_bytes() + small.peak_live_bytes();
    let hm = HmConfig::optane_like().without_cache().with_fast_capacity(peak / 4);
    let jobs = vec![
        JobSpec::new("a", &graph, 0, 5).with_weight(2),
        JobSpec::new("b", &small, 40_000_000, 5),
        JobSpec::new("c", &graph, 90_000_000, 4).with_fault(FaultProfile::light(), 0xBEEF),
    ];
    let run = || {
        ClusterScheduler::new(ClusterConfig::new(hm.clone()))
            .run(&jobs)
            .expect("cluster run completes")
            .to_json()
            .to_pretty_string()
    };
    assert_eq!(run(), run(), "replaying the same trace produced different bytes");
}

/// A one-job cluster must be invisible: same per-step reports, same fault
/// counters, same simulated clock as the single-runtime path — compared on
/// serialized bytes, under pressure and with fast capacity to spare.
#[test]
fn single_job_cluster_is_transparent() {
    let graph = ModelZoo::build(&ModelSpec::resnet(20, 4).with_scale(4)).unwrap();
    for frac in [0.2, 2.0] {
        let hm = fast_sized_for(HmConfig::optane_like().without_cache(), &graph, frac);
        let solo = SentinelRuntime::new(SentinelConfig::default(), hm.clone())
            .train(&graph, 6)
            .expect("solo run completes");
        let outcome = ClusterScheduler::new(ClusterConfig::new(hm))
            .run(&[JobSpec::new("solo", &graph, 0, 6)])
            .expect("cluster run completes");
        let tenant = &outcome.tenants[0];
        assert_eq!(
            tenant.report.to_json().to_pretty_string(),
            solo.report.to_json().to_pretty_string(),
            "per-step report diverged from the single runtime at frac {frac}"
        );
        assert_eq!(tenant.fault, solo.fault_counters);
        assert_eq!(outcome.evictions, 0);
        assert_eq!(outcome.quota_breaches, 0);
    }
}

/// Static quotas decouple tenants completely: B's serialized report is the
/// same whether A runs clean or under heavy injected faults.
#[test]
fn faults_in_one_tenant_never_leak_into_another() {
    let big = ModelZoo::build(&ModelSpec::resnet(20, 4).with_scale(4)).unwrap();
    let peak = big.peak_live_bytes();
    let hm = HmConfig::optane_like().without_cache().with_fast_capacity(peak / 2);
    let cfg = ClusterConfig::new(hm).with_quota(QuotaPolicy::StaticWeighted);
    let run_b = |a_fault: Option<(FaultProfile, u64)>| {
        let mut a = JobSpec::new("a", &big, 0, 5);
        if let Some((profile, seed)) = a_fault {
            a = a.with_fault(profile, seed);
        }
        let jobs = vec![a, JobSpec::new("b", &big, 0, 5)];
        let outcome = ClusterScheduler::new(ClusterConfig::clone(&cfg))
            .run(&jobs)
            .expect("cluster run completes");
        outcome.tenants[1].to_json().to_pretty_string()
    };
    let b_clean = run_b(None);
    let b_beside_faulty = run_b(Some((FaultProfile::heavy(), 0xFA17)));
    assert_eq!(
        b_clean, b_beside_faulty,
        "tenant B's report changed because tenant A was faulty"
    );
    // And A itself did record fault activity — the knob was live.
    let a = JobSpec::new("a", &big, 0, 5).with_fault(FaultProfile::heavy(), 0xFA17);
    let jobs = vec![a, JobSpec::new("b", &big, 0, 5)];
    let outcome = ClusterScheduler::new(cfg).run(&jobs).expect("cluster run completes");
    assert!(
        !outcome.tenants[0].fault.is_zero(),
        "heavy profile injected nothing into tenant A"
    );
    assert!(outcome.tenants[1].fault.is_zero(), "tenant B reported someone else's faults");
}
