//! Golden-shape tests: run the fast-mode figure/table generators and assert
//! the qualitative shapes documented in DESIGN.md §5 and EXPERIMENTS.md, so a
//! policy regression fails a test instead of silently bending a figure.
//!
//! These deliberately assert *shapes* (orderings, bounds, flatness) with
//! tolerance rather than golden numbers: the numeric values shift whenever a
//! cost model is retuned, but the paper's qualitative claims must not.

use sentinel::bench::{experiment_registry, ExpConfig};
use sentinel::util::{Json, ToJson};

/// Run one experiment in fast mode and return its serialized `data` payload.
fn run(id: &str) -> Json {
    let (_, generator) = experiment_registry()
        .into_iter()
        .find(|(known, _)| *known == id)
        .unwrap_or_else(|| panic!("unknown experiment id {id}"));
    let result = generator(&ExpConfig::new(true));
    let json = result.to_json();
    json.get("data").unwrap_or_else(|| panic!("{id}: no data payload")).clone()
}

/// Extract a numeric field, accepting any of the JSON number variants.
fn num(row: &Json, key: &str) -> f64 {
    match row.get(key) {
        Some(Json::F64(v)) => *v,
        Some(Json::U64(v)) => *v as f64,
        Some(Json::I64(v)) => *v as f64,
        other => panic!("field {key} is not a number: {other:?}"),
    }
}

/// Extract a nullable numeric field (`null` marks "n/a", e.g. vDNN on
/// models without convolution layers).
fn opt_num(row: &Json, key: &str) -> Option<f64> {
    match row.get(key) {
        Some(Json::Null) => None,
        _ => Some(num(row, key)),
    }
}

fn rows(data: &Json) -> &[Json] {
    match data {
        Json::Arr(rows) => rows,
        other => panic!("data is not an array: {other:?}"),
    }
}

/// Figure 7 (DESIGN §5): Sentinel at 20% fast memory approaches fast-only
/// performance and beats AutoTM, while IAL trails every other policy.
#[test]
fn fig7_sentinel_near_fast_only_and_ial_worst() {
    let data = run("fig7");
    let mut fast_sum = 0.0;
    let mut sentinel_sum = 0.0;
    for row in rows(&data) {
        let model = row.get("model").map(|m| m.to_string()).unwrap_or_default();
        let fast_only = num(row, "fast_only");
        let ial = num(row, "ial");
        let autotm = num(row, "autotm");
        let sentinel = num(row, "sentinel");

        for (name, v) in [("fast_only", fast_only), ("ial", ial), ("autotm", autotm), ("sentinel", sentinel)] {
            assert!(v >= 0.95, "{model}: {name} = {v:.3} is below slow-only parity");
        }
        assert!(ial <= autotm && ial <= sentinel, "{model}: IAL ({ial:.3}) should be the weakest policy");
        assert!(sentinel >= autotm, "{model}: Sentinel ({sentinel:.3}) should beat AutoTM ({autotm:.3})");
        assert!(sentinel <= fast_only * 1.001, "{model}: Sentinel ({sentinel:.3}) cannot beat fast-only ({fast_only:.3})");
        fast_sum += fast_only;
        sentinel_sum += sentinel;
    }
    assert!(
        sentinel_sum >= 0.75 * fast_sum,
        "Sentinel mean speedup ({:.3}) fell below 75% of fast-only ({:.3})",
        sentinel_sum / 5.0,
        fast_sum / 5.0
    );
}

/// Figure 10 (DESIGN §5): Sentinel's overhead over fast-only is bounded and
/// flat — already close to parity at 20% fast memory, no worse at 60%.
#[test]
fn fig10_overhead_is_bounded_and_shrinks_with_fast_size() {
    let data = run("fig10");
    for row in rows(&data) {
        let model = row.get("model").map(|m| m.to_string()).unwrap_or_default();
        let rel = match row.get("relative_to_fast_only") {
            Some(Json::Arr(vals)) => vals
                .iter()
                .map(|v| match v {
                    Json::F64(v) => *v,
                    Json::U64(v) => *v as f64,
                    other => panic!("{model}: non-numeric point {other:?}"),
                })
                .collect::<Vec<f64>>(),
            other => panic!("{model}: missing relative_to_fast_only: {other:?}"),
        };
        assert_eq!(rel.len(), 5, "{model}: expected points at 20..60%");
        for (i, v) in rel.iter().enumerate() {
            assert!(
                (0.95..=1.7).contains(v),
                "{model}: point {i} = {v:.3} outside the near-parity band [0.95, 1.7]"
            );
        }
        // Curve trends toward parity as fast memory grows...
        assert!(
            rel[4] <= rel[0] * 1.001,
            "{model}: overhead at 60% ({:.3}) exceeds overhead at 20% ({:.3})",
            rel[4],
            rel[0]
        );
        // ...and is flat from the start: 20% is within 25% of the 40% point.
        assert!(
            rel[0] <= rel[2] * 1.25,
            "{model}: overhead cliff between 20% ({:.3}) and 40% ({:.3})",
            rel[0],
            rel[2]
        );
    }
}

/// Figure 12 (EXPERIMENTS.md): across the GPU grid, vDNN is the weakest
/// policy, Sentinel-GPU tracks UM closely, stays ahead of Capuchin on
/// average and within 10% of the best-performing policy's mean.
#[test]
fn fig12_sentinel_gpu_competitive_and_vdnn_worst() {
    let data = run("fig12");
    let policies = ["vdnn", "autotm", "swapadvisor", "capuchin", "sentinel_gpu"];
    let mut sums = [0.0f64; 5];
    let mut counts = [0usize; 5];
    for row in rows(&data) {
        assert!((num(row, "um") - 1.0).abs() < 1e-9, "UM is the normalizer and must be 1.0");
        for (p, name) in policies.iter().enumerate() {
            if let Some(v) = opt_num(row, name) {
                assert!(v > 0.0 && v < 5.0, "{name} throughput {v:.3} is implausible");
                sums[p] += v;
                counts[p] += 1;
            }
        }
    }
    let mean = |p: usize| sums[p] / counts[p] as f64;
    let (vdnn, capuchin, sentinel) = (mean(0), mean(3), mean(4));
    let best = (0..5).map(mean).fold(f64::MIN, f64::max);
    for p in 1..5 {
        assert!(vdnn <= mean(p), "vDNN mean ({vdnn:.3}) should be the weakest, but beats {}", policies[p]);
    }
    assert!(sentinel >= capuchin, "Sentinel-GPU mean ({sentinel:.3}) fell behind Capuchin ({capuchin:.3})");
    assert!(sentinel >= 0.9 * best, "Sentinel-GPU mean ({sentinel:.3}) more than 10% behind the best policy ({best:.3})");
    assert!(sentinel >= 0.85, "Sentinel-GPU mean ({sentinel:.3}) fell well below UM parity");
}

/// Cluster experiment (DESIGN §12): the per-tenant report schema is stable
/// and the default 3-tenant trace exercises real contention — everyone is
/// admitted, at least one tenant queues, at least one cold-tensor eviction
/// repays a quota shrink, and p50/p99 reconcile with the raw step series.
#[test]
fn cluster_schema_and_contention_shape() {
    let data = run("cluster");
    assert!(num(&data, "fleet_fast_pages") > 0.0);
    assert_eq!(num(&data, "admissions"), 3.0, "default trace must admit all 3 tenants");
    assert_eq!(num(&data, "rejected"), 0.0);
    assert!(num(&data, "evictions") >= 1.0, "default trace must evict at least once");
    assert!(
        num(&data, "quota_breaches") >= 1.0,
        "an eviction implies a reported transient breach"
    );
    assert!(num(&data, "makespan_ns") > 0.0);

    let tenants = match data.get("tenants") {
        Some(Json::Arr(rows)) => rows.clone(),
        other => panic!("tenants is not an array: {other:?}"),
    };
    assert_eq!(tenants.len(), 3);
    let mut total_evictions = 0.0;
    let mut total_breaches = 0.0;
    let mut waited = 0;
    for (i, t) in tenants.iter().enumerate() {
        // Golden shape of the per-tenant report schema.
        assert_eq!(num(t, "job"), i as f64);
        for key in [
            "weight",
            "arrival_ns",
            "wait_ns",
            "steps",
            "p50_step_ns",
            "p99_step_ns",
            "evictions",
            "evicted_pages",
            "quota_breaches",
            "final_quota_pages",
        ] {
            assert!(num(t, key) >= 0.0, "tenant {i}: missing field {key}");
        }
        assert!(t.get("name").is_some() && t.get("model").is_some());
        let admitted = opt_num(t, "admitted_ns").expect("default trace admits everyone");
        let completed = opt_num(t, "completed_ns").expect("admitted tenants complete");
        assert!(completed > admitted, "tenant {i}: completion precedes admission");
        assert!(completed <= num(&data, "makespan_ns"));
        assert_eq!(num(t, "wait_ns"), admitted - num(t, "arrival_ns"));
        if num(t, "wait_ns") > 0.0 {
            waited += 1;
        }
        // p50/p99 reconcile with the raw per-step series (nearest rank).
        let steps = match t.get("step_ns") {
            Some(Json::Arr(vals)) => {
                vals.iter().map(|v| num_val(v)).collect::<Vec<f64>>()
            }
            other => panic!("tenant {i}: step_ns is not an array: {other:?}"),
        };
        assert_eq!(steps.len() as f64, num(t, "steps"));
        let mut sorted = steps.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = |p: usize| sorted[((p * sorted.len()).div_ceil(100)).max(1) - 1];
        assert_eq!(num(t, "p50_step_ns"), rank(50), "tenant {i}: p50 does not reconcile");
        assert_eq!(num(t, "p99_step_ns"), rank(99), "tenant {i}: p99 does not reconcile");
        total_evictions += num(t, "evictions");
        total_breaches += num(t, "quota_breaches");
    }
    assert_eq!(total_evictions, num(&data, "evictions"), "eviction counters must reconcile");
    assert_eq!(total_breaches, num(&data, "quota_breaches"), "breach counters must reconcile");
    assert!(waited >= 1, "default trace should make at least one tenant queue");
}

/// A bare JSON number (array element rather than object field).
fn num_val(v: &Json) -> f64 {
    match v {
        Json::F64(x) => *x,
        Json::U64(x) => *x as f64,
        Json::I64(x) => *x as f64,
        other => panic!("not a number: {other:?}"),
    }
}

/// Table V (DESIGN §5 / EXPERIMENTS.md): maximum trainable batch size obeys
/// the paper's ordering — Sentinel ≥ Capuchin ≥ AutoTM ≥ SwapAdvisor ≥
/// vDNN ≥ TensorFlow — with Sentinel strictly beating plain TensorFlow.
#[test]
fn table5_max_batch_ordering_holds() {
    let data = run("table5");
    for row in rows(&data) {
        let model = row.get("model").map(|m| m.to_string()).unwrap_or_default();
        let tf = num(row, "tensorflow");
        let sa = num(row, "swapadvisor");
        let autotm = num(row, "autotm");
        let capuchin = num(row, "capuchin");
        let sentinel = num(row, "sentinel");
        if let Some(vdnn) = opt_num(row, "vdnn") {
            assert!(sa >= vdnn, "{model}: SwapAdvisor ({sa}) below vDNN ({vdnn})");
            assert!(vdnn >= tf, "{model}: vDNN ({vdnn}) below TensorFlow ({tf})");
        }
        assert!(sentinel >= capuchin, "{model}: Sentinel ({sentinel}) below Capuchin ({capuchin})");
        assert!(capuchin >= autotm, "{model}: Capuchin ({capuchin}) below AutoTM ({autotm})");
        assert!(autotm >= sa, "{model}: AutoTM ({autotm}) below SwapAdvisor ({sa})");
        assert!(sa >= tf, "{model}: SwapAdvisor ({sa}) below TensorFlow ({tf})");
        assert!(sentinel > tf, "{model}: Sentinel ({sentinel}) does not extend TensorFlow's batch ({tf})");
    }
}

/// Adaptation experiment (DESIGN §14): the three-arm schema is stable, the
/// adaptive arm actually closes its loop (drift → one observation step →
/// one re-solve, no warnings), static stays measurably above the oracle
/// after the capacity loss, and adaptive recovers to near the oracle.
#[test]
fn adaptive_schema_and_recovery_shape() {
    let data = run("adaptive");
    let arms = rows(&data);
    assert_eq!(arms.len(), 3);
    for (arm, expected) in arms.iter().zip(["static", "adaptive", "oracle"]) {
        assert_eq!(
            arm.get("variant").map(|v| v.to_string()).unwrap_or_default(),
            format!("\"{expected}\"")
        );
        for key in [
            "pre_change_step_ns",
            "post_change_step_ns",
            "worst_post_step_ns",
            "drift_events",
            "observation_steps",
            "resolves",
            "warnings",
        ] {
            assert!(num(arm, key) >= 0.0, "{expected}: missing field {key}");
        }
        assert!(matches!(arm.get("step_ns"), Some(Json::Arr(v)) if !v.is_empty()));
    }
    let (stat, adap, orac) = (&arms[0], &arms[1], &arms[2]);
    assert_eq!(num(adap, "drift_events"), 1.0);
    assert_eq!(num(adap, "observation_steps"), 1.0);
    assert_eq!(num(adap, "resolves"), 1.0);
    for arm in [stat, orac] {
        assert_eq!(num(arm, "resolves"), 0.0, "only the adaptive arm may re-solve");
    }
    for arm in [stat, adap, orac] {
        assert_eq!(num(arm, "warnings"), 0.0, "no degradation warnings on the healthy path");
    }
    let oracle_post = num(orac, "post_change_step_ns");
    assert!(
        num(stat, "post_change_step_ns") > oracle_post * 1.05,
        "static must stay degraded versus the oracle"
    );
    assert!(
        num(adap, "post_change_step_ns") < oracle_post * 1.05,
        "adaptive must recover to within 5% of the oracle"
    );
    assert!(num(adap, "post_change_step_ns") < num(stat, "post_change_step_ns"));
}
