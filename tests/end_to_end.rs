//! Cross-crate end-to-end tests: the full profile → reorganize → train
//! pipeline over every model family and policy.

use sentinel::baselines::{run_baseline, Baseline};
use sentinel::core::{fast_sized_for, SentinelConfig, SentinelRuntime};
use sentinel::dnn::{Executor, SingleTier};
use sentinel::mem::{HmConfig, MemorySystem, Tier};
use sentinel::models::{ModelSpec, ModelZoo};

fn scaled_models() -> Vec<ModelSpec> {
    vec![
        ModelSpec::resnet(32, 8).with_scale(4),
        ModelSpec::bert_base(2).with_scale(8),
        ModelSpec::lstm(4).with_scale(8),
        ModelSpec::mobilenet(4).with_scale(8),
        ModelSpec::dcgan(8).with_scale(8),
    ]
}

#[test]
fn sentinel_full_pipeline_on_every_model() {
    for spec in scaled_models() {
        let graph = ModelZoo::build(&spec).unwrap();
        let hm = fast_sized_for(HmConfig::optane_like().without_cache(), &graph, 0.2);
        let outcome = SentinelRuntime::new(SentinelConfig::default(), hm)
            .train(&graph, 6)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        assert_eq!(outcome.steps_executed, 6, "{}", spec.name());
        assert!(outcome.stats.mil >= 1, "{}", spec.name());
        let profile = outcome.profile.expect("profile collected");
        assert_eq!(profile.tensors.len(), graph.num_tensors(), "{}", spec.name());
        assert!(profile.faults > 0, "{}: profiling counted nothing", spec.name());
        // Managed steps must beat the (fault-burdened) profiling step.
        assert!(
            outcome.report.steady_step_ns() < outcome.report.steps[0].duration_ns,
            "{}",
            spec.name()
        );
    }
}

#[test]
fn every_policy_runs_every_model_without_leaks() {
    for spec in scaled_models() {
        let graph = ModelZoo::build(&spec).unwrap();
        let hm = fast_sized_for(HmConfig::optane_like().without_cache(), &graph, 0.25);
        for baseline in Baseline::all() {
            let Some(mut policy) = baseline.make(&graph, &hm) else { continue };
            let mem = MemorySystem::new(hm.clone());
            let mut exec = Executor::new(&graph, mem);
            let report = exec
                .run(policy.as_mut(), 3)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", baseline.name(), spec.name()));
            assert_eq!(report.steps_executed(), 3);
            // After the run, only preallocated tensors may hold memory.
            for t in graph.tensors() {
                assert_eq!(
                    exec.ctx().is_live(t.id),
                    t.preallocated(),
                    "{} on {}: tensor {} leaked",
                    baseline.name(),
                    spec.name(),
                    t.name
                );
            }
            // No accesses may have hit unmapped pages.
            let mem = exec.into_mem();
            assert_eq!(
                mem.unmapped_accesses(),
                0,
                "{} on {}: unmapped accesses",
                baseline.name(),
                spec.name()
            );
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let spec = ModelSpec::resnet(32, 8).with_scale(4);
    let graph = ModelZoo::build(&spec).unwrap();
    let hm = fast_sized_for(HmConfig::optane_like(), &graph, 0.2);
    let a = SentinelRuntime::new(SentinelConfig::default(), hm.clone()).train(&graph, 6).unwrap();
    let b = SentinelRuntime::new(SentinelConfig::default(), hm).train(&graph, 6).unwrap();
    assert_eq!(a.report.steps, b.report.steps);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn fast_memory_capacity_is_never_exceeded() {
    let spec = ModelSpec::resnet(32, 8).with_scale(4);
    let graph = ModelZoo::build(&spec).unwrap();
    let hm = fast_sized_for(HmConfig::optane_like().without_cache(), &graph, 0.2);
    let fast_pages = hm.fast_pages();
    for baseline in [Baseline::Ial, Baseline::AutoTm, Baseline::UnifiedMemory] {
        let mut policy = baseline.make(&graph, &hm).unwrap();
        let mem = MemorySystem::new(hm.clone());
        let mut exec = Executor::new(&graph, mem);
        let report = exec.run(policy.as_mut(), 3).unwrap();
        assert!(
            report.peak_fast_pages() <= fast_pages,
            "{}: peak {} > capacity {}",
            baseline.name(),
            report.peak_fast_pages(),
            fast_pages
        );
    }
    let outcome = SentinelRuntime::new(SentinelConfig::default(), hm.clone()).train(&graph, 6).unwrap();
    assert!(outcome.report.peak_fast_pages() <= fast_pages);
}

#[test]
fn gpu_platform_policies_never_compute_from_slow_memory() {
    // On the GPU platform every access must be serviced from fast memory:
    // policies fault tensors in before the access happens.
    let spec = ModelSpec::resnet(32, 8).with_scale(4);
    let graph = ModelZoo::build(&spec).unwrap();
    let hm = fast_sized_for(HmConfig::gpu_like().without_cache(), &graph, 0.4);
    for baseline in [Baseline::UnifiedMemory, Baseline::Capuchin] {
        let mut policy = baseline.make(&graph, &hm).unwrap();
        let mem = MemorySystem::new(hm.clone());
        let mut exec = Executor::new(&graph, mem);
        let report = exec.run(policy.as_mut(), 3).unwrap();
        let last = report.steps.last().unwrap();
        let slow_fraction = last.slow_accesses as f64
            / (last.slow_accesses + last.fast_accesses).max(1) as f64;
        assert!(
            slow_fraction < 0.05,
            "{}: {:.1}% of accesses served from slow memory on GPU",
            baseline.name(),
            100.0 * slow_fraction
        );
    }
}

#[test]
fn sentinel_orders_between_slow_and_fast_only() {
    let spec = ModelSpec::mobilenet(4).with_scale(8);
    let graph = ModelZoo::build(&spec).unwrap();
    let hm = fast_sized_for(HmConfig::optane_like().without_cache(), &graph, 0.25);
    let slow = {
        let mem = MemorySystem::new(hm.clone());
        Executor::new(&graph, mem).run(&mut SingleTier::slow(), 3).unwrap()
    };
    let fast = {
        let mem = MemorySystem::new(fast_sized_for(HmConfig::optane_like().without_cache(), &graph, 1.5));
        Executor::new(&graph, mem).run(&mut SingleTier::fast(), 3).unwrap()
    };
    let sentinel = SentinelRuntime::new(SentinelConfig::default(), hm).train(&graph, 6).unwrap();
    assert!(sentinel.report.steady_step_ns() < slow.steady_step_ns());
    assert!(sentinel.report.steady_step_ns() >= fast.steady_step_ns());
}

#[test]
fn reorganized_allocation_reduces_false_sharing_at_runtime() {
    // Under Sentinel's co-allocation the packed pools separate lifetime
    // classes, so the peak footprint should not exceed the TF-style packed
    // footprint by much, and training must still be correct.
    let spec = ModelSpec::resnet(32, 8).with_scale(4);
    let graph = ModelZoo::build(&spec).unwrap();
    let hm = fast_sized_for(HmConfig::optane_like().without_cache(), &graph, 0.3);
    let with = SentinelRuntime::new(SentinelConfig::default(), hm.clone()).train(&graph, 6).unwrap();
    let without = {
        let cfg = SentinelConfig { coallocate: false, ..SentinelConfig::default() };
        SentinelRuntime::new(cfg, hm).train(&graph, 6).unwrap()
    };
    // Both complete; co-allocation should not be slower than packed-everything.
    assert!(
        with.report.steady_step_ns() <= without.report.steady_step_ns() * 11 / 10,
        "co-allocation {} vs packed {}",
        with.report.steady_step_ns(),
        without.report.steady_step_ns()
    );
}

#[test]
fn memory_mode_and_first_touch_do_not_migrate() {
    let spec = ModelSpec::resnet(20, 4).with_scale(4);
    let graph = ModelZoo::build(&spec).unwrap();
    let hm = fast_sized_for(HmConfig::optane_like(), &graph, 0.2);
    for baseline in [Baseline::FirstTouch, Baseline::MemoryModeCache] {
        let report = run_baseline(baseline, &graph, &hm, 3).unwrap().unwrap();
        assert_eq!(report.steady_migrated_bytes(), 0, "{}", baseline.name());
    }
}

#[test]
fn tier_accounting_is_consistent_after_training() {
    let spec = ModelSpec::lstm(4).with_scale(8);
    let graph = ModelZoo::build(&spec).unwrap();
    let hm = fast_sized_for(HmConfig::optane_like().without_cache(), &graph, 0.3);
    let mem = MemorySystem::new(hm);
    let mut exec = Executor::new(&graph, mem);
    let mut policy = SingleTier::slow();
    exec.run(&mut policy, 2).unwrap();
    let prealloc_bytes: u64 = graph.preallocated().map(|t| t.bytes).sum();
    let mem = exec.into_mem();
    let used = (mem.used_pages(Tier::Fast) + mem.used_pages(Tier::Slow)) * mem.page_size();
    // Mapped pages cover exactly the preallocated tensors (plus page rounding).
    assert!(used >= prealloc_bytes, "used {used} < prealloc {prealloc_bytes}");
    assert!(used <= prealloc_bytes * 2 + (64 << 10), "used {used} way over prealloc {prealloc_bytes}");
}
