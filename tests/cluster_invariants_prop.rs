//! Property-based invariants of the multi-tenant cluster scheduler:
//! randomized arrival traces × quota policies × fault profiles, audited at
//! every logged event.
//!
//! At *every* event of every generated run:
//!
//! * Σ per-tenant fast-tier pages never exceeds the fleet's fast capacity
//!   (and neither does the reservation total backing that argument),
//! * no tenant sits above its applied quota except during an
//!   explicitly-reported transient breach,
//! * every eviction victim is cold — its next scheduled use lies at or
//!   beyond the interval boundary the demotion was planned against,
//!
//! and at the end of every run: every admitted job completed, the
//! fleet-wide counters reconcile with the per-tenant ones, p50/p99 are
//! recomputable from the raw per-step latencies, and fault counters only
//! ever appear on tenants that were actually armed.
//!
//! Defaults to a fast case count; set `SENTINEL_PROP_CASES` (and
//! `SENTINEL_PROP_SEED`) for a full sweep.

use std::sync::OnceLock;

use sentinel::core::{
    percentile_ns, ClusterConfig, ClusterEventKind, ClusterOutcome, ClusterScheduler, JobSpec,
    QuotaPolicy,
};
use sentinel::dnn::Graph;
use sentinel::mem::{FaultProfile, HmConfig};
use sentinel::models::{ModelSpec, ModelZoo};
use sentinel::util::prop::PropConfig;
use sentinel::util::{prop_assert, prop_assert_eq, Rng};

#[derive(Debug, Clone)]
struct TenantGen {
    model: usize,
    weight: u64,
    arrival_ns: u64,
    steps: usize,
    /// `Some((heavy, seed))` arms the tenant's private fault injector.
    fault: Option<(bool, u64)>,
}

#[derive(Debug, Clone)]
struct Scenario {
    tenants: Vec<TenantGen>,
    /// Fleet fast capacity as a percentage of the tenants' summed peaks.
    fleet_pct: u64,
    /// Admission floor as a percentage of a job's peak footprint.
    min_pct: u64,
    static_quota: bool,
    lane_shares: bool,
}

/// The model pool, built once: graphs are immutable and shared by borrow.
fn graphs() -> &'static Vec<Graph> {
    static GRAPHS: OnceLock<Vec<Graph>> = OnceLock::new();
    GRAPHS.get_or_init(|| {
        [
            ModelSpec::resnet(20, 4).with_scale(4),
            ModelSpec::mobilenet(4).with_scale(4),
            ModelSpec::lstm(8).with_scale(4),
        ]
        .iter()
        .map(|spec| ModelZoo::build(spec).expect("model builds"))
        .collect()
    })
}

fn gen_scenario(rng: &mut Rng) -> Scenario {
    let n = rng.gen_usize(2, 5);
    let mut at = 0u64;
    let tenants = (0..n)
        .map(|i| {
            if i > 0 {
                at += rng.gen_range(0, 600_000_000);
            }
            TenantGen {
                model: rng.gen_usize(0, graphs().len()),
                weight: rng.gen_range(1, 4),
                arrival_ns: at,
                steps: rng.gen_usize(2, 5),
                fault: rng
                    .gen_bool(0.25)
                    .then(|| (rng.gen_bool(0.5), rng.next_u64())),
            }
        })
        .collect();
    Scenario {
        tenants,
        fleet_pct: *rng.choose(&[12, 20, 35, 60]),
        min_pct: *rng.choose(&[5, 10, 25]),
        static_quota: rng.gen_bool(0.3),
        lane_shares: rng.gen_bool(0.8),
    }
}

/// Shrink toward fewer tenants, fewer steps, no faults.
fn shrink_scenario(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    if s.tenants.len() > 1 {
        for i in 0..s.tenants.len() {
            let mut t = s.clone();
            t.tenants.remove(i);
            out.push(t);
        }
    }
    for i in 0..s.tenants.len() {
        if s.tenants[i].steps > 1 {
            let mut t = s.clone();
            t.tenants[i].steps -= 1;
            out.push(t);
        }
        if s.tenants[i].fault.is_some() {
            let mut t = s.clone();
            t.tenants[i].fault = None;
            out.push(t);
        }
        if s.tenants[i].arrival_ns > 0 {
            let mut t = s.clone();
            t.tenants[i].arrival_ns /= 2;
            out.push(t);
        }
    }
    out
}

fn run_scenario(s: &Scenario) -> ClusterOutcome {
    let pool = graphs();
    let jobs: Vec<JobSpec<'_>> = s
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut job = JobSpec::new(
                &format!("t{i}"),
                &pool[t.model],
                t.arrival_ns,
                t.steps,
            )
            .with_weight(t.weight);
            if let Some((heavy, seed)) = t.fault {
                let profile =
                    if heavy { FaultProfile::heavy() } else { FaultProfile::light() };
                job = job.with_fault(profile, seed);
            }
            job
        })
        .collect();
    let peak: u64 = jobs.iter().map(|j| j.graph.peak_live_bytes()).sum();
    let fleet_bytes = ((peak * s.fleet_pct) / 100).max(1 << 20);
    let hm = HmConfig::optane_like().without_cache().with_fast_capacity(fleet_bytes);
    let quota =
        if s.static_quota { QuotaPolicy::StaticWeighted } else { QuotaPolicy::WeightedMaxMin };
    let cfg = ClusterConfig::new(hm)
        .with_quota(quota)
        .with_min_quota_frac(s.min_pct as f64 / 100.0)
        .with_lane_shares(s.lane_shares);
    ClusterScheduler::new(cfg).run(&jobs).expect("cluster run completes")
}

#[test]
fn cluster_invariants_hold_on_random_traces() {
    let mut cfg = PropConfig::from_env();
    if std::env::var("SENTINEL_PROP_CASES").is_err() {
        // Each case is a whole cluster simulation; keep the default pass
        // quick and let the env opt into the full sweep.
        cfg = cfg.with_cases(10);
    }
    cfg.run(
        "cluster_invariants_hold_on_random_traces",
        gen_scenario,
        shrink_scenario,
        |s| {
            let outcome = run_scenario(s);

            // -- event-level invariants ------------------------------------
            for e in &outcome.events {
                prop_assert!(
                    e.fleet_used_pages <= outcome.fleet_fast_pages,
                    "fleet fast usage {} exceeds capacity {} at {:?}",
                    e.fleet_used_pages,
                    outcome.fleet_fast_pages,
                    e
                );
                prop_assert!(
                    e.fleet_reserved_pages <= outcome.fleet_fast_pages,
                    "fleet reservation {} exceeds capacity {} at {:?}",
                    e.fleet_reserved_pages,
                    outcome.fleet_fast_pages,
                    e
                );
                if !e.transient_breach {
                    prop_assert!(
                        e.job_used_pages <= e.job_quota_pages,
                        "tenant above quota without a reported breach at {:?}",
                        e
                    );
                }
                if let ClusterEventKind::Evicted { next_use, boundary, pages, .. } = &e.kind {
                    prop_assert!(*pages > 0, "eviction of a pageless tensor at {:?}", e);
                    prop_assert!(
                        next_use.is_none() || next_use.unwrap() >= *boundary,
                        "eviction victim was hot: next use {:?} before boundary {} at {:?}",
                        next_use,
                        boundary,
                        e
                    );
                }
            }

            // -- run-level invariants --------------------------------------
            let admitted: Vec<usize> = outcome
                .events
                .iter()
                .filter_map(|e| {
                    matches!(e.kind, ClusterEventKind::Admitted { .. }).then_some(e.job)
                })
                .collect();
            for &job in &admitted {
                prop_assert!(
                    outcome
                        .events
                        .iter()
                        .any(|e| e.job == job && e.kind == ClusterEventKind::Completed),
                    "admitted job {job} never completed"
                );
            }
            prop_assert_eq!(outcome.admissions as usize, admitted.len());
            prop_assert_eq!(
                outcome.admissions + outcome.rejected,
                s.tenants.len() as u64,
                "every job must end admitted or rejected"
            );
            let evicted_events = outcome
                .events
                .iter()
                .filter(|e| matches!(e.kind, ClusterEventKind::Evicted { .. }))
                .count() as u64;
            prop_assert_eq!(outcome.evictions, evicted_events);

            // -- per-tenant reconciliation ---------------------------------
            let mut evictions = 0;
            let mut breaches = 0;
            for (i, t) in outcome.tenants.iter().enumerate() {
                prop_assert_eq!(t.job, i);
                evictions += t.evictions;
                breaches += t.quota_breaches;
                if t.completed_ns.is_some() {
                    prop_assert_eq!(t.steps, s.tenants[i].steps);
                    prop_assert_eq!(t.step_ns.len(), t.steps);
                    let mut sorted = t.step_ns.clone();
                    sorted.sort_unstable();
                    prop_assert_eq!(t.p50_step_ns, percentile_ns(&sorted, 50));
                    prop_assert_eq!(t.p99_step_ns, percentile_ns(&sorted, 99));
                    let (Some(adm), Some(done)) = (t.admitted_ns, t.completed_ns) else {
                        unreachable!()
                    };
                    prop_assert!(adm >= t.arrival_ns);
                    prop_assert_eq!(t.wait_ns, adm - t.arrival_ns);
                    prop_assert!(done >= adm);
                    prop_assert!(done <= outcome.makespan_ns);
                } else {
                    prop_assert_eq!(t.steps, 0, "rejected tenant ran steps");
                }
                // Fault attribution is structural: only armed tenants may
                // report fault activity.
                if s.tenants[i].fault.is_none() {
                    prop_assert!(
                        t.fault.is_zero(),
                        "tenant {i} reports fault counters but was never armed: {:?}",
                        t.fault
                    );
                }
            }
            prop_assert_eq!(outcome.evictions, evictions);
            prop_assert_eq!(outcome.quota_breaches, breaches);
            Ok(())
        },
    );
}

/// Replaying any random scenario is byte-identical — determinism is not
/// just a fixed-seed special case.
#[test]
fn random_scenarios_replay_identically() {
    use sentinel::util::ToJson;
    let mut cfg = PropConfig::from_env();
    if std::env::var("SENTINEL_PROP_CASES").is_err() {
        cfg = cfg.with_cases(4);
    }
    cfg.run(
        "random_scenarios_replay_identically",
        gen_scenario,
        shrink_scenario,
        |s| {
            let a = run_scenario(s).to_json().to_pretty_string();
            let b = run_scenario(s).to_json().to_pretty_string();
            prop_assert_eq!(a, b, "replay diverged");
            Ok(())
        },
    );
}
