//! Runtime checks of Sentinel's semantic guarantees: co-allocation rules,
//! short-lived placement, and solver behaviour, observed *during* training
//! through a probing wrapper policy.

use sentinel::core::{fast_sized_for, SentinelConfig, SentinelPolicy};
use sentinel::dnn::{ExecCtx, Executor, MemoryManager, OpRef, PoolSpec, Tensor, TensorId};
use sentinel::mem::{AccessKind, HmConfig, MemorySystem, Tier};
use sentinel::models::{ModelSpec, ModelZoo};

/// Forwards every hook to the wrapped Sentinel policy while recording
/// invariant violations after each op.
struct Probe {
    inner: SentinelPolicy,
    violations: Vec<String>,
    checked_ops: usize,
    short_fast_failures: usize,
    short_allocs: usize,
}

impl Probe {
    fn new(cfg: SentinelConfig) -> Self {
        Probe {
            inner: SentinelPolicy::new(cfg),
            violations: Vec::new(),
            checked_ops: 0,
            short_fast_failures: 0,
            short_allocs: 0,
        }
    }

    fn check_page_sharing(&mut self, ctx: &ExecCtx<'_>) {
        // Rule 4: no live short-lived tensor shares a page with a live
        // long-lived tensor. Rule 5: preallocated tensors never share pages.
        let graph = ctx.graph();
        let live: Vec<&Tensor> =
            graph.tensors().iter().filter(|t| ctx.is_live(t.id)).collect();
        for (i, a) in live.iter().enumerate() {
            for b in live.iter().skip(i + 1) {
                let (Some(pa), Some(pb)) = (ctx.placement(a.id), ctx.placement(b.id)) else {
                    continue;
                };
                if !pa.pages.overlaps(&pb.pages) {
                    continue;
                }
                // Overlapping covering pages is fine only if the actual byte
                // spans share a page, so check byte-level page sharing.
                let share_page = pa.addr / 4096 == (pb.addr + pb.bytes - 1) / 4096
                    || pb.addr / 4096 == (pa.addr + pa.bytes - 1) / 4096
                    || pa.pages.intersection(&pb.pages).is_some();
                if !share_page {
                    continue;
                }
                if a.is_short_lived() != b.is_short_lived() {
                    self.violations.push(format!(
                        "short/long page sharing: {} and {}",
                        a.name, b.name
                    ));
                }
                if a.preallocated() || b.preallocated() {
                    self.violations.push(format!(
                        "preallocated tensor shares a page: {} and {}",
                        a.name, b.name
                    ));
                }
            }
        }
    }
}

impl MemoryManager for Probe {
    fn name(&self) -> &str {
        "probe"
    }
    fn on_train_begin(&mut self, ctx: &mut ExecCtx<'_>) {
        self.inner.on_train_begin(ctx);
    }
    fn on_step_begin(&mut self, ctx: &mut ExecCtx<'_>) {
        self.inner.on_step_begin(ctx);
    }
    fn pool_for(&mut self, tensor: &Tensor, ctx: &ExecCtx<'_>) -> PoolSpec {
        self.inner.pool_for(tensor, ctx)
    }
    fn tier_for(&mut self, tensor: &Tensor, ctx: &ExecCtx<'_>) -> Tier {
        self.inner.tier_for(tensor, ctx)
    }
    fn on_alloc(&mut self, tensor: TensorId, ctx: &mut ExecCtx<'_>) {
        self.inner.on_alloc(tensor, ctx);
        // In the managed phase (step ≥ 1), short-lived tensors must land in
        // fast memory.
        if ctx.step() >= 1 && ctx.tensor(tensor).is_short_lived() {
            self.short_allocs += 1;
            if ctx.tensor_bytes_in(tensor, Tier::Fast) == 0 {
                self.short_fast_failures += 1;
            }
        }
    }
    fn on_capacity_pressure(&mut self, tier: Tier, needed: u64, ctx: &mut ExecCtx<'_>) -> bool {
        self.inner.on_capacity_pressure(tier, needed, ctx)
    }
    fn before_layer(&mut self, layer: usize, ctx: &mut ExecCtx<'_>) {
        self.inner.before_layer(layer, ctx);
    }
    fn after_layer(&mut self, layer: usize, ctx: &mut ExecCtx<'_>) {
        self.inner.after_layer(layer, ctx);
    }
    fn before_op(&mut self, at: OpRef, ctx: &mut ExecCtx<'_>) {
        self.inner.before_op(at, ctx);
    }
    fn after_op(&mut self, at: OpRef, ctx: &mut ExecCtx<'_>) {
        self.inner.after_op(at, ctx);
        if ctx.step() >= 1 && self.checked_ops < 400 {
            self.checked_ops += 1;
            self.check_page_sharing(ctx);
        }
    }
    fn before_access(&mut self, tensor: TensorId, kind: AccessKind, ctx: &mut ExecCtx<'_>) {
        self.inner.before_access(tensor, kind, ctx);
    }
    fn on_free(&mut self, tensor: TensorId, ctx: &mut ExecCtx<'_>) {
        self.inner.on_free(tensor, ctx);
    }
    fn on_step_end(&mut self, ctx: &mut ExecCtx<'_>) {
        self.inner.on_step_end(ctx);
    }
    fn on_train_end(&mut self, ctx: &mut ExecCtx<'_>) {
        self.inner.on_train_end(ctx);
    }
}

fn run_probe(spec: &ModelSpec, fraction: f64) -> Probe {
    let graph = ModelZoo::build(spec).unwrap();
    let hm = fast_sized_for(HmConfig::optane_like().without_cache(), &graph, fraction);
    let mem = MemorySystem::new(hm);
    let mut exec = Executor::new(&graph, mem);
    let mut probe = Probe::new(SentinelConfig::default());
    for _ in 0..4 {
        exec.run_step(&mut probe).unwrap();
    }
    probe
}

#[test]
fn coallocation_rules_hold_at_runtime() {
    let probe = run_probe(&ModelSpec::resnet(32, 8).with_scale(4), 0.3);
    assert!(probe.checked_ops > 100, "probe checked too few ops");
    assert!(
        probe.violations.is_empty(),
        "co-allocation violations: {:?}",
        &probe.violations[..probe.violations.len().min(5)]
    );
}

#[test]
fn short_lived_tensors_are_placed_in_fast_memory() {
    let probe = run_probe(&ModelSpec::resnet(32, 8).with_scale(4), 0.3);
    assert!(probe.short_allocs > 50, "too few short-lived allocations observed");
    let failure_rate = probe.short_fast_failures as f64 / probe.short_allocs as f64;
    assert!(
        failure_rate < 0.05,
        "{}/{} short-lived allocations missed fast memory",
        probe.short_fast_failures,
        probe.short_allocs
    );
}

#[test]
fn coallocation_rules_hold_for_recurrent_models_too() {
    let probe = run_probe(&ModelSpec::lstm(4).with_scale(8), 0.3);
    assert!(probe.violations.is_empty(), "violations: {:?}", &probe.violations[..probe.violations.len().min(5)]);
}

#[test]
fn ablations_degrade_gracefully() {
    use sentinel::core::{Ablation, SentinelRuntime};
    let spec = ModelSpec::resnet(32, 8).with_scale(4);
    let graph = ModelZoo::build(&spec).unwrap();
    let hm = fast_sized_for(HmConfig::optane_like().without_cache(), &graph, 0.2);
    let mut times = Vec::new();
    for ab in [Ablation::Direct, Ablation::WithInterval, Ablation::Full] {
        let cfg = SentinelConfig::default().with_ablation(ab);
        let o = SentinelRuntime::new(cfg, hm.clone()).train(&graph, 6).unwrap();
        times.push(o.report.steady_step_ns());
    }
    // Full Sentinel must not lose to the direct-migration ablation.
    assert!(times[2] <= times[0], "full {} vs direct {}", times[2], times[0]);
}
