//! Parallelism is a wall-clock knob only: running experiments on one worker
//! or many must produce byte-identical serialized results. This locks down
//! the contract behind `run_experiments --jobs N` for a fast subset that
//! exercises every parallel fan-out — Fig. 10's model × fast-size cells,
//! Fig. 12's model × batch × policy grid (including SwapAdvisor's
//! pool-backed GA), and Table V's per-policy batch searches.

use sentinel::bench::{experiment_registry, ExpConfig};
use sentinel::util::ToJson;

/// Render one experiment to its on-disk JSON bytes at a given job count.
/// `set_default_jobs` steers pools sized from the environment (the GA deep
/// inside `run_gpu_baseline`), exactly as the `--jobs` flag does.
fn render(id: &str, jobs: usize) -> String {
    let (_, generator) = experiment_registry()
        .into_iter()
        .find(|(known, _)| *known == id)
        .unwrap_or_else(|| panic!("unknown experiment id {id}"));
    sentinel::util::set_default_jobs(jobs);
    let result = generator(&ExpConfig::new(true).with_jobs(jobs));
    sentinel::util::set_default_jobs(0);
    result.to_json().to_pretty_string()
}

#[test]
fn fast_subset_is_byte_identical_at_any_job_count() {
    for id in ["fig10", "table5", "fig12", "adaptive"] {
        let serial = render(id, 1);
        let parallel = render(id, 4);
        assert_eq!(
            serial, parallel,
            "{id}: serialized result changed between --jobs 1 and --jobs 4"
        );
    }
}
