//! Property-based tests on the core data structures and invariants, on the
//! in-tree deterministic harness (`sentinel_util::prop`).

use sentinel::dnn::{PoolSpec, SegmentAllocator};
use sentinel::mem::{
    pages_for_bytes, AccessKind, CacheFilter, CacheFilterSpec, Direction, HmConfig, MemorySystem,
    MigrationEngine, PageRange, Tier,
};
use sentinel_util::prop::{check, no_shrink, shrink_u64, shrink_vec, PropConfig};
use sentinel_util::{prop_assert, prop_assert_eq, Rng};

// ---------------------------------------------------------------- PageRange

#[test]
fn overlap_is_symmetric() {
    check(
        "overlap_is_symmetric",
        |rng: &mut Rng| {
            (rng.gen_range(0, 100), rng.gen_range(0, 20), rng.gen_range(0, 100), rng.gen_range(0, 20))
        },
        no_shrink(),
        |&(a, ac, b, bc)| {
            let ra = PageRange::new(a, ac);
            let rb = PageRange::new(b, bc);
            prop_assert_eq!(ra.overlaps(&rb), rb.overlaps(&ra));
            Ok(())
        },
    );
}

#[test]
fn intersection_is_contained() {
    check(
        "intersection_is_contained",
        |rng: &mut Rng| {
            (rng.gen_range(0, 100), rng.gen_range(1, 20), rng.gen_range(0, 100), rng.gen_range(1, 20))
        },
        no_shrink(),
        |&(a, ac, b, bc)| {
            let ra = PageRange::new(a, ac);
            let rb = PageRange::new(b, bc);
            if let Some(i) = ra.intersection(&rb) {
                prop_assert!(i.count >= 1);
                for p in i.iter() {
                    prop_assert!(ra.contains(p) && rb.contains(p));
                }
            } else {
                prop_assert!(!ra.overlaps(&rb));
            }
            Ok(())
        },
    );
}

#[test]
fn pages_for_bytes_is_minimal() {
    check(
        "pages_for_bytes_is_minimal",
        |rng: &mut Rng| (rng.gen_range(1, 1_000_000), *rng.choose(&[64u64, 512, 4096])),
        // Shrink the byte count only; the page size must stay in its menu.
        |&(bytes, page)| shrink_u64(1)(&bytes).into_iter().map(|b| (b, page)).collect(),
        |&(bytes, page)| {
            let n = pages_for_bytes(bytes, page);
            prop_assert!(n * page >= bytes);
            prop_assert!((n - 1) * page < bytes);
            Ok(())
        },
    );
}

// ------------------------------------------------------------- SegmentAllocator

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc { pool: u8, bytes: u64, aligned: bool },
    FreeOldest,
    FreeNewest,
}

fn alloc_op(rng: &mut Rng) -> AllocOp {
    // Weights 3:1:1, as in the original strategy.
    match rng.gen_usize(0, 5) {
        0..=2 => AllocOp::Alloc {
            pool: rng.gen_range(0, 3) as u8,
            bytes: rng.gen_range(1, 20_000),
            aligned: rng.gen_bool(0.5),
        },
        3 => AllocOp::FreeOldest,
        _ => AllocOp::FreeNewest,
    }
}

/// Live allocations never overlap in the byte address space, pools never
/// share pages, and page tenancy is exactly the number of live tenants.
#[test]
fn allocator_never_overlaps_live_allocations() {
    PropConfig::from_env().with_cases(64).run(
        "allocator_never_overlaps_live_allocations",
        |rng: &mut Rng| {
            let n = rng.gen_usize(1, 60);
            (0..n).map(|_| alloc_op(rng)).collect::<Vec<_>>()
        },
        shrink_vec(1, |op: &AllocOp| match op {
            AllocOp::Alloc { pool, bytes, aligned } => shrink_u64(1)(bytes)
                .into_iter()
                .map(|b| AllocOp::Alloc { pool: *pool, bytes: b, aligned: *aligned })
                .collect(),
            _ => Vec::new(),
        }),
        |ops| {
            let mut mem = MemorySystem::new(HmConfig::testing().with_slow_capacity(1 << 30));
            let mut alloc = SegmentAllocator::new(4096);
            let mut live: Vec<(u8, sentinel::dnn::Allocation)> = Vec::new();

            for op in ops {
                match *op {
                    AllocOp::Alloc { pool, bytes, aligned } => {
                        let spec = if aligned {
                            PoolSpec::page_aligned(u64::from(pool) + 100)
                        } else {
                            PoolSpec::packed(u64::from(pool))
                        };
                        let a = alloc.alloc(&mut mem, spec, bytes);
                        prop_assert!(a.bytes >= bytes);
                        live.push((pool, a));
                    }
                    AllocOp::FreeOldest => {
                        if !live.is_empty() {
                            let (_, a) = live.remove(0);
                            alloc.free(&a);
                        }
                    }
                    AllocOp::FreeNewest => {
                        if let Some((_, a)) = live.pop() {
                            alloc.free(&a);
                        }
                    }
                }
                // No two live allocations overlap in byte space.
                for i in 0..live.len() {
                    for j in (i + 1)..live.len() {
                        let (a, b) = (&live[i].1, &live[j].1);
                        let disjoint = a.addr + a.bytes <= b.addr || b.addr + b.bytes <= a.addr;
                        prop_assert!(disjoint, "allocations overlap: {a:?} vs {b:?}");
                    }
                }
                // Page tenancy equals the number of live allocations covering it.
                use std::collections::HashMap;
                let mut expected: HashMap<u64, u32> = HashMap::new();
                for (_, a) in &live {
                    for p in a.pages.iter() {
                        *expected.entry(p).or_insert(0) += 1;
                    }
                }
                for (&p, &c) in &expected {
                    prop_assert_eq!(alloc.tenants(p), c, "page {} tenancy: {} != {}", p, alloc.tenants(p), c);
                }
            }
            // Draining everything empties the populated-page set.
            for (_, a) in live.drain(..) {
                alloc.free(&a);
            }
            prop_assert_eq!(alloc.populated_pages(), 0);
            prop_assert_eq!(alloc.live_bytes(), 0);
            Ok(())
        },
    );
}

// ------------------------------------------------------------- MigrationEngine

/// Per-lane completion times are monotone and cancel+drain partitions
/// the in-flight set.
#[test]
fn migration_engine_timestamps_are_monotone() {
    PropConfig::from_env().with_cases(64).run(
        "migration_engine_timestamps_are_monotone",
        |rng: &mut Rng| {
            let n = rng.gen_usize(1, 30);
            (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0, 100),
                        rng.gen_range(1, 8),
                        rng.gen_bool(0.5),
                        rng.gen_range(0, 10_000),
                    )
                })
                .collect::<Vec<_>>()
        },
        shrink_vec(1, no_shrink()),
        |batches| {
            let mut e = MigrationEngine::new(2.0, 1.0, 50, 4096);
            let mut last_ready = [0u64; 2];
            let mut now = 0u64;
            let mut issued = 0usize;
            for &(first, count, promote, dt) in batches {
                now += dt;
                let dir = if promote { Direction::Promote } else { Direction::Demote };
                let t = e.enqueue(PageRange::new(first, count), dir, now);
                let lane = if promote { 0 } else { 1 };
                prop_assert!(t.ready_at >= now);
                prop_assert!(t.ready_at >= last_ready[lane], "lane went backwards");
                last_ready[lane] = t.ready_at;
                issued += 1;
            }
            // Draining at `cut` then cancelling pending work at `cut` partitions
            // the in-flight set exactly.
            let cut = now + 1;
            let done = e.drain_completed(cut);
            let cancelled = e.cancel_pending(cut);
            prop_assert_eq!(done.len() + cancelled.len(), issued);
            prop_assert!(e.in_flight().next().is_none());
            prop_assert!(done.iter().all(|f| f.ready_at <= cut));
            prop_assert!(cancelled.iter().all(|f| f.ready_at > cut));
            Ok(())
        },
    );
}

// ------------------------------------------------------------- MemorySystem

/// Mapping, migrating and unmapping conserves page counts; capacity is
/// never exceeded.
#[test]
fn page_accounting_conserves_pages() {
    PropConfig::from_env().with_cases(48).run(
        "page_accounting_conserves_pages",
        |rng: &mut Rng| {
            let n = rng.gen_usize(1, 40);
            (0..n).map(|_| (rng.gen_range(1, 6), rng.gen_bool(0.5))).collect::<Vec<_>>()
        },
        shrink_vec(1, no_shrink()),
        |ops| {
            let cfg =
                HmConfig::testing().with_fast_capacity(64 * 4096).with_slow_capacity(1024 * 4096);
            let fast_cap = cfg.fast_pages();
            let slow_cap = cfg.slow_pages();
            let mut mem = MemorySystem::new(cfg);
            let mut mapped: Vec<(PageRange, bool)> = Vec::new(); // (range, migrated flag unused)
            let mut now = 0u64;
            let mut total_pages = 0u64;

            for &(count, prefer_fast) in ops {
                now += 1_000_000; // plenty of time: all migrations complete
                mem.poll(now);
                let r = mem.reserve(count);
                let tier = if prefer_fast { Tier::Fast } else { Tier::Slow };
                let ok = mem.map(r, tier, now).is_ok() || mem.map(r, tier.other(), now).is_ok();
                if ok {
                    mapped.push((r, false));
                    total_pages += count;
                }
                // Occasionally migrate the oldest mapped range.
                if mapped.len() > 2 {
                    let (range, _) = mapped[0];
                    if let Some(t) = mem.tier_of(range.first) {
                        let _ = mem.migrate(range, t.other(), now);
                    }
                }
                mem.poll(now + 500_000);
                let used = mem.used_pages(Tier::Fast) + mem.used_pages(Tier::Slow);
                prop_assert!(mem.used_pages(Tier::Fast) <= fast_cap);
                prop_assert!(mem.used_pages(Tier::Slow) <= slow_cap);
                prop_assert!(used >= total_pages, "pages lost: used {} < mapped {}", used, total_pages);
            }
            // Unmap everything: zero usage remains.
            now += 10_000_000;
            mem.poll(now);
            for (r, _) in mapped {
                mem.unmap(r, now).unwrap();
            }
            prop_assert_eq!(mem.used_pages(Tier::Fast) + mem.used_pages(Tier::Slow), 0);
            Ok(())
        },
    );
}

/// The access path conserves accounting: mm accesses + cache hits equal
/// the pages touched.
#[test]
fn access_accounting_conserves_pages() {
    PropConfig::from_env().with_cases(48).run(
        "access_accounting_conserves_pages",
        |rng: &mut Rng| {
            let n = rng.gen_usize(1, 40);
            (0..n)
                .map(|_| (rng.gen_range(0, 32), rng.gen_range(1, 8), rng.gen_bool(0.5)))
                .collect::<Vec<_>>()
        },
        shrink_vec(1, no_shrink()),
        |spans| {
            let mut cfg = HmConfig::testing().with_slow_capacity(1 << 22);
            cfg.cache = Some(CacheFilterSpec {
                capacity_bytes: 8 * 4096,
                ways: 2,
                line_bytes: 4096,
                hit_latency_ns: 1,
                hit_bw_bytes_per_ns: 100.0,
            });
            let mut mem = MemorySystem::new(cfg);
            let r = mem.reserve(64);
            mem.map(r, Tier::Slow, 0).unwrap();
            for &(first, count, write) in spans {
                let range = PageRange::new(first.min(56), count);
                let kind = if write { AccessKind::Write } else { AccessKind::Read };
                let rep = mem.access(range, count * 4096, kind, 0);
                prop_assert_eq!(rep.mm_accesses + rep.cache_hits, range.count);
                prop_assert_eq!(rep.bytes_fast, 0); // everything lives in slow
                prop_assert!(rep.elapsed_ns > 0);
            }
            Ok(())
        },
    );
}

// ------------------------------------------------------------- CacheFilter

#[test]
fn cache_filter_conserves_probes() {
    check(
        "cache_filter_conserves_probes",
        |rng: &mut Rng| {
            let n = rng.gen_usize(1, 200);
            (0..n).map(|_| rng.gen_range(0, 64)).collect::<Vec<_>>()
        },
        shrink_vec(1, shrink_u64(0)),
        |pages| {
            let mut c = CacheFilter::new(CacheFilterSpec {
                capacity_bytes: 16 * 4096,
                ways: 4,
                line_bytes: 4096,
                hit_latency_ns: 1,
                hit_bw_bytes_per_ns: 10.0,
            });
            for &p in pages {
                c.probe(p);
            }
            prop_assert_eq!(c.hits() + c.misses(), pages.len() as u64);
            // A second probe of the most recent page always hits.
            let last = *pages.last().unwrap();
            prop_assert_eq!(c.probe(last), sentinel::mem::CacheOutcome::Hit);
            Ok(())
        },
    );
}
