//! No-fault transparency and cross-jobs fault determinism.
//!
//! Two contracts of the fault-injection subsystem:
//!
//! 1. **Transparency** — an injector whose profile has every rate at zero
//!    consumes no entropy, so results are byte-identical to a run with no
//!    injector at all, at any job count.
//! 2. **Determinism** — with a nonzero profile and fixed seed, results are
//!    byte-identical across job counts: each run's injector seed is derived
//!    from the base seed and a stable per-run key, never from scheduling.
//!
//! Everything lives in ONE `#[test]` in its own binary: the scenarios set
//! process-global environment variables, which must not race with other
//! tests sharing the process.

use sentinel::bench::{experiment_registry, ExpConfig};
use sentinel::util::ToJson;

/// Render one experiment to its on-disk JSON bytes at a given job count.
fn render(id: &str, jobs: usize) -> String {
    let (_, generator) = experiment_registry()
        .into_iter()
        .find(|(known, _)| *known == id)
        .unwrap_or_else(|| panic!("unknown experiment id {id}"));
    sentinel::util::set_default_jobs(jobs);
    let result = generator(&ExpConfig::new(true).with_jobs(jobs));
    sentinel::util::set_default_jobs(0);
    result.to_json().to_pretty_string()
}

#[test]
fn zero_rate_injection_is_transparent_and_faulty_runs_are_deterministic() {
    let id = "fig7";
    // Pristine baseline: no fault environment at all.
    std::env::remove_var("SENTINEL_FAULT_PROFILE");
    std::env::remove_var("SENTINEL_FAULT_SEED");
    let pristine = render(id, 1);
    assert_eq!(pristine, render(id, 4), "{id}: pristine run varies with --jobs");

    // An armed injector with the all-zero profile must not change a byte.
    std::env::set_var("SENTINEL_FAULT_PROFILE", "off");
    std::env::set_var("SENTINEL_FAULT_SEED", "42");
    assert_eq!(
        pristine,
        render(id, 1),
        "{id}: zero-rate injector changed the output (transparency broken)"
    );
    assert_eq!(
        pristine,
        render(id, 4),
        "{id}: zero-rate injector changed the parallel output"
    );

    // Nonzero faults with a fixed seed: different from pristine (the faults
    // are real) but byte-identical across job counts (the schedule is
    // derived per run, not per thread).
    std::env::set_var("SENTINEL_FAULT_PROFILE", "light");
    std::env::set_var("SENTINEL_FAULT_SEED", "7");
    let faulty_serial = render(id, 1);
    let faulty_parallel = render(id, 4);
    assert_eq!(
        faulty_serial, faulty_parallel,
        "{id}: seeded fault schedule varies with --jobs"
    );
    assert_ne!(
        pristine, faulty_serial,
        "{id}: the light profile injected no observable faults — suspicious"
    );

    // The chaos experiment only exists while a fault seed is set.
    assert!(experiment_registry().iter().any(|(id, _)| *id == "chaos"));
    std::env::remove_var("SENTINEL_FAULT_PROFILE");
    std::env::remove_var("SENTINEL_FAULT_SEED");
    assert!(!experiment_registry().iter().any(|(id, _)| *id == "chaos"));
}
