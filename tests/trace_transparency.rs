//! Trace transparency and cross-jobs trace determinism.
//!
//! Two contracts of the structured-trace subsystem:
//!
//! 1. **Transparency** — with tracing off (absent or `SENTINEL_TRACE=off`)
//!    the subsystem is strictly zero-cost: experiment results are
//!    byte-identical to a build that never heard of tracing, at any job
//!    count.
//! 2. **Determinism** — at `SENTINEL_TRACE=full` the results are still
//!    byte-identical to the pristine run (events are recorded off to the
//!    side, never fed back into the simulation), and the emitted trace
//!    files are byte-identical across job counts: every timestamp is
//!    simulated and every file name derives from the run key alone.
//!
//! Everything lives in ONE `#[test]` in its own binary: the scenarios set
//! process-global environment variables, which must not race with other
//! tests sharing the process.

use sentinel::bench::{experiment_registry, ExpConfig};
use sentinel::util::{Json, ToJson};
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

/// Render one experiment to its on-disk JSON bytes at a given job count.
fn render(id: &str, jobs: usize) -> String {
    let (_, generator) = experiment_registry()
        .into_iter()
        .find(|(known, _)| *known == id)
        .unwrap_or_else(|| panic!("unknown experiment id {id}"));
    sentinel::util::set_default_jobs(jobs);
    let result = generator(&ExpConfig::new(true).with_jobs(jobs));
    sentinel::util::set_default_jobs(0);
    result.to_json().to_pretty_string()
}

/// Read every trace file in `dir` as `name -> bytes`.
fn trace_files(dir: &PathBuf) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("trace dir readable") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().into_string().expect("utf-8 file name");
        assert!(name.ends_with(".trace.json"), "unexpected file {name}");
        out.insert(name, fs::read_to_string(entry.path()).expect("trace readable"));
    }
    out
}

#[test]
fn tracing_off_is_byte_transparent_and_full_traces_are_deterministic() {
    let id = "fig7";
    // Pristine baseline: no trace environment at all.
    std::env::remove_var("SENTINEL_TRACE");
    std::env::remove_var("SENTINEL_TRACE_DIR");
    let pristine = render(id, 1);
    assert_eq!(pristine, render(id, 4), "{id}: pristine run varies with --jobs");

    // Explicit off must not change a byte either.
    std::env::set_var("SENTINEL_TRACE", "off");
    assert_eq!(pristine, render(id, 1), "{id}: SENTINEL_TRACE=off changed the output");
    assert_eq!(pristine, render(id, 4), "{id}: SENTINEL_TRACE=off changed the parallel output");

    // Full tracing: results stay byte-identical (recording is off to the
    // side of the simulation) and the trace files themselves are identical
    // across job counts.
    let base = std::env::temp_dir().join(format!("sentinel-trace-test-{}", std::process::id()));
    let dir1 = base.join("jobs1");
    let dir4 = base.join("jobs4");
    fs::create_dir_all(&dir1).expect("create trace dir");
    fs::create_dir_all(&dir4).expect("create trace dir");
    std::env::set_var("SENTINEL_TRACE", "full");

    std::env::set_var("SENTINEL_TRACE_DIR", &dir1);
    assert_eq!(pristine, render(id, 1), "{id}: full tracing changed the serial output");
    std::env::set_var("SENTINEL_TRACE_DIR", &dir4);
    assert_eq!(pristine, render(id, 4), "{id}: full tracing changed the parallel output");

    let serial = trace_files(&dir1);
    let parallel = trace_files(&dir4);
    assert!(!serial.is_empty(), "{id}: full tracing emitted no trace files");
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "{id}: trace file set varies with --jobs"
    );
    for (name, bytes) in &serial {
        assert_eq!(bytes, &parallel[name], "{name}: trace bytes vary with --jobs");
    }

    // Every trace parses with the strict in-tree JSON parser and records
    // the expected span taxonomy.
    for (name, bytes) in &serial {
        let doc = Json::parse(bytes).unwrap_or_else(|e| panic!("{name}: invalid JSON: {e}"));
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(events)) => events,
            other => panic!("{name}: missing traceEvents array, got {other:?}"),
        };
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| match e.get("name") {
                Some(Json::Str(s)) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        for expected in ["step 0", "interval 0", "issue", "complete"] {
            assert!(names.contains(&expected), "{name}: no {expected:?} event");
        }
    }

    std::env::remove_var("SENTINEL_TRACE");
    std::env::remove_var("SENTINEL_TRACE_DIR");
    let _ = fs::remove_dir_all(&base);
}
